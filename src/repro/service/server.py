"""``repro-serve``: the persistent compile daemon.

A single :class:`CompileServer` keeps one warm
:class:`~repro.service.engine.CompileEngine` (worker pool + caches)
alive across many clients, so only the first batch ever pays pool
spawn and a cold cache. The wire protocol stays at the same
"ordinary IR in, ordinary IR out" altitude as the rest of the stack:
newline-delimited JSON objects over a Unix or TCP socket, one request
per line, every response frame echoing the request ``id`` so one
connection can multiplex concurrent submits.

Requests (``op`` field)::

    {"op": "submit", "id": "1", "payload": "...", "script": "...",
     "params": {"factor": 4}, "entry_point": null,
     "priority": "interactive", "stream": true}
    {"op": "stats", "id": "2"}
    {"op": "ping", "id": "3"}
    {"op": "drain", "id": "4"}            # finish admitted, refuse new
    {"op": "drain", "id": "4", "stop": true}   # ... then exit
    {"op": "reload", "id": "5", "cache_dir": "/tmp/c2",
     "max_attempts": 3}                   # drain, hot-swap, resume

``payload``/``script`` may instead arrive as ``payload_path`` /
``script_path`` (the server reads the file — useful when client and
server share a filesystem and the IR is large).

Responses (``type`` field): ``result`` (terminal job outcome),
``event`` (one streamed lifecycle record from the closed
:data:`~repro.observability.events.EVENT_TYPES` vocabulary, when the
submit asked for ``stream``), ``stats``/``pong``/``drained``/
``reloaded``, and ``error`` with a machine-readable ``code``:
``draining`` (submits refused during drain), ``quota`` (per-client
admission quota exhausted), ``bad-request``, and ``internal``.

Scheduling: submits carry a priority class (``interactive`` <
``batch`` < ``background`` by rank); the server admits from a
priority queue into the frontier's bounded queue, so when the service
is saturated an interactive job overtakes queued batch work without
preempting anything already dispatched.

Shutdown contract: SIGTERM (or ``drain {"stop": true}``) finishes
every admitted job, refuses new submits with ``code="draining"``,
flushes trace/event exports, and exits 0 — the same
refuse-never-hang contract :class:`ServiceFrontier` itself honours
for close/submit races.
"""

from __future__ import annotations

import argparse
import asyncio
import itertools
import json
import signal
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..observability.events import TERMINAL_EVENTS, EventLog
from .engine import CompileEngine, CompileJob, JobResult
from .frontier import (ServiceClosedError, ServiceFrontier,
                       add_engine_arguments, build_engine)

#: Priority classes in rank order (lower rank admits first).
PRIORITY_RANKS: Dict[str, int] = {
    "interactive": 0,
    "batch": 1,
    "background": 2,
}

#: JobResult fields serialized into a ``result`` frame.
RESULT_FIELDS = (
    "job_id", "output", "diagnostics", "key", "cache_hit",
    "output_digest", "coalesced", "function_tier", "worker_seconds",
    "wall_seconds", "attempts", "stats",
)


def result_to_frame(result: JobResult) -> Dict[str, object]:
    frame: Dict[str, object] = {
        "type": "result",
        "status": result.status.value,
        "ok": result.ok,
    }
    for name in RESULT_FIELDS:
        frame[name] = getattr(result, name)
    return frame


@dataclass
class ServerStats:
    """Daemon-side accounting, folded into the ``stats`` response."""

    connections_total: int = 0
    connections_active: int = 0
    submitted: int = 0
    completed: int = 0
    streamed: int = 0
    quota_rejected: int = 0
    drain_rejected: int = 0
    bad_requests: int = 0
    by_priority: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "connections_total": self.connections_total,
            "connections_active": self.connections_active,
            "submitted": self.submitted,
            "completed": self.completed,
            "streamed": self.streamed,
            "quota_rejected": self.quota_rejected,
            "drain_rejected": self.drain_rejected,
            "bad_requests": self.bad_requests,
            "by_priority": dict(self.by_priority),
        }


class _Client:
    """Per-connection state: writer, a send lock (frames from
    concurrent submits must not interleave mid-line), and the
    admission-quota counter."""

    _ids = itertools.count(1)

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self.lock = asyncio.Lock()
        self.inflight = 0
        self.name = f"client-{next(self._ids)}"


@dataclass(order=True)
class _Ticket:
    """One queued submission awaiting an admission slot. Ordered by
    (priority rank, arrival sequence) for the scheduler's heap."""

    rank: int
    seq: int
    job: CompileJob = field(compare=False)
    client: _Client = field(compare=False)
    done: asyncio.Future = field(compare=False)


class CompileServer:
    """The persistent daemon around one warm engine + frontier.

    Construct with a started event loop (``await server.start()``),
    then ``await server.serve_forever()`` or drive it from tests with
    a client. ``engine.events`` is required for streaming; one is
    attached automatically when absent.
    """

    def __init__(self, engine: CompileEngine,
                 socket_path: Optional[str] = None,
                 host: Optional[str] = None, port: int = 0,
                 max_queue: int = 64,
                 dispatchers: Optional[int] = None,
                 client_quota: int = 16):
        if socket_path is None and host is None:
            raise ValueError("need a unix socket_path or a TCP host")
        if client_quota < 1:
            raise ValueError("client_quota must be >= 1")
        self.engine = engine
        if engine.events is None:
            engine.events = EventLog()
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.client_quota = client_quota
        self.stats = ServerStats()
        self.frontier = ServiceFrontier(engine, max_queue=max_queue,
                                        dispatchers=dispatchers)
        self._seq = itertools.count()
        self._pending: "asyncio.PriorityQueue[_Ticket]" = None  # type: ignore
        self._slots: Optional[asyncio.Semaphore] = None
        self._scheduler: Optional[asyncio.Task] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._streams: Dict[str, asyncio.Queue] = {}
        self._active_jobs: Set[str] = set()
        self._clients: Set[_Client] = set()
        self._draining = False
        self._stopping = False
        self._stopped: Optional[asyncio.Event] = None
        self._idle: Optional[asyncio.Event] = None
        self._inflight_jobs = 0
        self._admin_lock: Optional[asyncio.Lock] = None
        self._unsubscribe = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._pending = asyncio.PriorityQueue()
        self._slots = asyncio.Semaphore(
            self.frontier.max_queue + self.frontier.dispatchers
        )
        self._stopped = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._admin_lock = asyncio.Lock()
        await self.frontier.start()
        self._unsubscribe = self.engine.events.subscribe(self._on_event)
        self._scheduler = asyncio.create_task(
            self._schedule(), name="serve-scheduler"
        )
        if self.socket_path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.socket_path
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.host, port=self.port
            )
            self.port = self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> str:
        if self.socket_path is not None:
            return self.socket_path
        return f"{self.host}:{self.port}"

    async def serve_forever(self) -> None:
        assert self._stopped is not None
        await self._stopped.wait()

    async def stop(self) -> None:
        """Graceful shutdown: refuse new submits, finish admitted
        jobs, then tear down the listener, scheduler, frontier, and
        client connections. Idempotent."""
        if self._stopped is None or self._stopped.is_set():
            return
        self._stopping = True
        self._draining = True
        await self._idle.wait()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._scheduler is not None:
            self._scheduler.cancel()
            try:
                await self._scheduler
            except asyncio.CancelledError:
                pass
            self._scheduler = None
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None
        await self.frontier.close()
        for client in list(self._clients):
            try:
                client.writer.close()
            except Exception:
                pass
        self._stopped.set()

    async def __aenter__(self) -> "CompileServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- event routing -------------------------------------------------------

    def _on_event(self, record: Dict[str, object]) -> None:
        """EventLog subscriber: runs on the *emitting* thread (engine
        dispatcher threads included), so it only trampolines onto the
        loop; the per-job queues are touched on the loop alone."""
        job_id = record.get("job_id")
        if not isinstance(job_id, str):
            return
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(self._route_event, job_id, record)
        except RuntimeError:
            pass  # loop shut down between the check and the call

    def _route_event(self, job_id: str, record: Dict[str, object]) -> None:
        queue = self._streams.get(job_id)
        if queue is not None:
            queue.put_nowait(record)

    # -- scheduling ----------------------------------------------------------

    async def _schedule(self) -> None:
        """Admit queued tickets into the frontier in (priority rank,
        arrival) order. The semaphore bounds how many submissions may
        occupy the frontier at once, so the priority queue — not the
        frontier's FIFO — is where saturated-service ordering is
        decided."""
        assert self._pending is not None and self._slots is not None
        while True:
            ticket = await self._pending.get()
            await self._slots.acquire()
            asyncio.create_task(self._run_ticket(ticket))

    async def _run_ticket(self, ticket: _Ticket) -> None:
        try:
            result = await self.frontier.submit(ticket.job)
        except BaseException as error:
            if not ticket.done.done():
                ticket.done.set_exception(error)
        else:
            if not ticket.done.done():
                ticket.done.set_result(result)
        finally:
            self._slots.release()

    def _job_started(self) -> None:
        self._inflight_jobs += 1
        self._idle.clear()

    def _job_finished(self) -> None:
        self._inflight_jobs -= 1
        if self._inflight_jobs <= 0:
            self._idle.set()

    def _unique_job_id(self, requested: Optional[str]) -> str:
        """Server-side job ids must be unique among in-flight jobs or
        two clients' event streams would cross; suffix on collision."""
        base = requested or f"job-{next(self._seq)}"
        job_id = base
        attempt = 0
        while job_id in self._active_jobs:
            attempt += 1
            job_id = f"{base}~{attempt}"
        return job_id

    # -- connection handling -------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        client = _Client(writer)
        self._clients.add(client)
        self.stats.connections_total += 1
        self.stats.connections_active += 1
        tasks: Set[asyncio.Task] = set()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    request = json.loads(line)
                    if not isinstance(request, dict):
                        raise ValueError("request is not an object")
                except ValueError as error:
                    self.stats.bad_requests += 1
                    await self._send(client, {
                        "type": "error", "code": "bad-request",
                        "message": f"undecodable request: {error}",
                    })
                    continue
                task = asyncio.create_task(
                    self._handle_request(client, request)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            for task in list(tasks):
                task.cancel()
            self._clients.discard(client)
            self.stats.connections_active -= 1
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _send(self, client: _Client,
                    frame: Dict[str, object]) -> None:
        data = (json.dumps(frame) + "\n").encode()
        async with client.lock:
            if client.writer.is_closing():
                return
            client.writer.write(data)
            try:
                await client.writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _handle_request(self, client: _Client,
                              request: Dict[str, object]) -> None:
        rid = request.get("id")
        op = request.get("op")
        try:
            if op == "submit":
                await self._handle_submit(client, rid, request)
            elif op == "stats":
                await self._send(client, {
                    "type": "stats", "id": rid,
                    **self.stats_snapshot(),
                })
            elif op == "ping":
                await self._send(client, {
                    "type": "pong", "id": rid,
                    "draining": self._draining,
                })
            elif op == "drain":
                await self._handle_drain(client, rid, request)
            elif op == "reload":
                await self._handle_reload(client, rid, request)
            else:
                self.stats.bad_requests += 1
                await self._send(client, {
                    "type": "error", "id": rid, "code": "bad-request",
                    "message": f"unknown op {op!r}",
                })
        except asyncio.CancelledError:
            raise
        except Exception as error:  # defensive: never kill the reader
            await self._send(client, {
                "type": "error", "id": rid, "code": "internal",
                "message": f"{type(error).__name__}: {error}",
            })

    # -- ops -----------------------------------------------------------------

    def _build_job(self, request: Dict[str, object]) -> CompileJob:
        payload = request.get("payload")
        if payload is None and request.get("payload_path"):
            with open(str(request["payload_path"])) as handle:
                payload = handle.read()
        script = request.get("script")
        if script is None and request.get("script_path"):
            with open(str(request["script_path"])) as handle:
                script = handle.read()
        if not isinstance(payload, str) or not isinstance(script, str):
            raise ValueError(
                "submit needs payload/script text or *_path fields"
            )
        params = request.get("params")
        if params is not None and not isinstance(params, dict):
            raise ValueError("params must be an object")
        timeout = request.get("timeout")
        if timeout is not None:
            timeout = float(timeout)
        requested = request.get("job_id")
        return CompileJob(
            payload_text=payload,
            script_text=script,
            params=params,
            entry_point=request.get("entry_point"),
            timeout=timeout,
            job_id=self._unique_job_id(
                str(requested) if requested is not None else None
            ),
        )

    async def _handle_submit(self, client: _Client, rid,
                             request: Dict[str, object]) -> None:
        if self._draining:
            self.stats.drain_rejected += 1
            await self._send(client, {
                "type": "error", "id": rid, "code": "draining",
                "message": "server is draining; submit refused",
            })
            return
        if client.inflight >= self.client_quota:
            self.stats.quota_rejected += 1
            await self._send(client, {
                "type": "error", "id": rid, "code": "quota",
                "message": (
                    f"client admission quota exhausted "
                    f"({self.client_quota} jobs in flight)"
                ),
            })
            return
        priority = str(request.get("priority") or "batch")
        if priority not in PRIORITY_RANKS:
            self.stats.bad_requests += 1
            await self._send(client, {
                "type": "error", "id": rid, "code": "bad-request",
                "message": f"unknown priority {priority!r} (choose "
                           f"from: {', '.join(sorted(PRIORITY_RANKS))})",
            })
            return
        try:
            job = self._build_job(request)
        except (OSError, ValueError) as error:
            self.stats.bad_requests += 1
            await self._send(client, {
                "type": "error", "id": rid, "code": "bad-request",
                "message": str(error),
            })
            return

        stream = bool(request.get("stream"))
        sub_queue: Optional[asyncio.Queue] = None
        if stream:
            sub_queue = asyncio.Queue()
            self._streams[job.job_id] = sub_queue
            self.stats.streamed += 1
        self._active_jobs.add(job.job_id)
        client.inflight += 1
        self._job_started()
        self.stats.submitted += 1
        self.stats.by_priority[priority] = (
            self.stats.by_priority.get(priority, 0) + 1
        )
        done: asyncio.Future = self._loop.create_future()
        ticket = _Ticket(rank=PRIORITY_RANKS[priority],
                         seq=next(self._seq), job=job,
                         client=client, done=done)
        self._pending.put_nowait(ticket)
        try:
            if sub_queue is not None:
                await self._forward_events(client, rid, sub_queue, done)
            try:
                result = await done
            except ServiceClosedError as error:
                await self._send(client, {
                    "type": "error", "id": rid, "code": "draining",
                    "message": str(error), "job_id": job.job_id,
                })
                return
            frame = result_to_frame(result)
            frame["id"] = rid
            if request.get("job_id") is not None:
                frame["requested_job_id"] = request["job_id"]
            await self._send(client, frame)
            self.stats.completed += 1
        finally:
            self._streams.pop(job.job_id, None)
            self._active_jobs.discard(job.job_id)
            client.inflight -= 1
            self._job_finished()

    async def _forward_events(self, client: _Client, rid,
                              sub_queue: asyncio.Queue,
                              done: asyncio.Future) -> None:
        """Stream this job's lifecycle records until its terminal
        event. The engine emits the terminal COMPLETED record *before*
        the frontier resolves the result future (both cross to the
        loop via call_soon_threadsafe, in order), so draining after
        ``done`` resolves is bounded — but a short timeout guards the
        contract anyway rather than hanging a client on a violation."""
        while True:
            getter = asyncio.ensure_future(sub_queue.get())
            await asyncio.wait(
                {getter, done}, return_when=asyncio.FIRST_COMPLETED
            )
            if getter.done():
                record = getter.result()
                await self._send(client, {
                    "type": "event", "id": rid, **record
                })
                if record.get("event") in TERMINAL_EVENTS:
                    return
                continue
            getter.cancel()
            try:
                while True:
                    record = await asyncio.wait_for(sub_queue.get(), 1.0)
                    await self._send(client, {
                        "type": "event", "id": rid, **record
                    })
                    if record.get("event") in TERMINAL_EVENTS:
                        return
            except asyncio.TimeoutError:
                return

    async def _handle_drain(self, client: _Client, rid,
                            request: Dict[str, object]) -> None:
        """Finish every admitted job, refuse new submits (structured
        ``draining`` errors), then acknowledge; with ``stop`` the whole
        server shuts down after the ack (TERM uses the same path)."""
        async with self._admin_lock:
            self._draining = True
            await self._idle.wait()
        await self._send(client, {
            "type": "drained", "id": rid,
            "completed": self.engine.stats.completed,
            "stopping": bool(request.get("stop")),
        })
        if request.get("stop"):
            asyncio.create_task(self.stop())

    async def _handle_reload(self, client: _Client, rid,
                             request: Dict[str, object]) -> None:
        """Drain, hot-swap what the request names (cache dir/size,
        retry policy, job timeout), then resume admissions. The swap
        happens at inflight == 0 so no job straddles two configs."""
        from .cache import CompilationCache
        from .resilience import RetryPolicy

        async with self._admin_lock:
            self._draining = True
            await self._idle.wait()
            applied: List[str] = []
            try:
                if ("cache_dir" in request or "cache_size" in request
                        or request.get("clear_cache")):
                    old = self.engine.cache
                    capacity = int(request.get(
                        "cache_size",
                        getattr(old, "capacity", 256) or 256,
                    ))
                    disk_path = request.get(
                        "cache_dir", getattr(old, "disk_path", None)
                    )
                    self.engine.cache = CompilationCache(
                        capacity=capacity, disk_path=disk_path,
                        faults=getattr(self.engine, "faults", None),
                    )
                    applied.append("cache")
                if "max_attempts" in request or "backoff" in request:
                    attempts = int(request.get("max_attempts", 2))
                    if attempts < 1:
                        raise ValueError("max_attempts must be >= 1")
                    self.engine.retry_policy = (
                        RetryPolicy(
                            max_attempts=attempts,
                            base_backoff=float(
                                request.get("backoff", 0.0)
                            ),
                        )
                        if attempts > 1 else RetryPolicy.none()
                    )
                    applied.append("retry")
                if "job_timeout" in request:
                    timeout = request["job_timeout"]
                    self.engine.job_timeout = (
                        float(timeout) if timeout is not None else None
                    )
                    applied.append("job_timeout")
            except (TypeError, ValueError) as error:
                self.stats.bad_requests += 1
                self._draining = self._stopping
                await self._send(client, {
                    "type": "error", "id": rid, "code": "bad-request",
                    "message": str(error),
                })
                return
            # Resume admissions — unless a stop() began while we held
            # the drain, in which case it owns the draining flag.
            self._draining = self._stopping
        await self._send(client, {
            "type": "reloaded", "id": rid, "applied": applied,
        })

    # -- stats ---------------------------------------------------------------

    def stats_snapshot(self) -> Dict[str, object]:
        snapshot: Dict[str, object] = {
            "server": self.stats.as_dict(),
            "engine": self.engine.stats.as_dict(),
            "cache": (self.engine.cache.stats.as_dict()
                      if self.engine.cache is not None else None),
            "draining": self._draining,
            "queue_depth": self.frontier.queue_depth,
        }
        profiler = getattr(self.engine, "profiler", None)
        if profiler is not None:
            snapshot["profiler"] = profiler.to_json()
            snapshot["metrics"] = profiler.registry_snapshot()
        return snapshot


# ---------------------------------------------------------------------------
# repro-serve CLI
# ---------------------------------------------------------------------------


async def _serve(args, engine) -> int:
    server = CompileServer(
        engine,
        socket_path=args.socket,
        host=args.host if args.socket is None else None,
        port=args.port,
        max_queue=args.queue_size,
        client_quota=args.client_quota,
    )
    await server.start()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(
            signum,
            lambda: asyncio.ensure_future(server.stop()),
        )
    # The readiness line CI and scripts wait for before connecting.
    print(f"repro-serve: listening on {server.address}", flush=True)
    await server.serve_forever()
    print("repro-serve: drained and stopped", flush=True)
    if args.json is not None:
        with open(args.json, "w") as handle:
            json.dump(server.stats_snapshot(), handle, indent=2)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="persistent compile daemon: a warm worker pool and "
        "cache behind a line-delimited JSON protocol on a unix or TCP "
        "socket (submit with repro-submit or repro-batch --connect)",
    )
    parser.add_argument("--socket", default=None, metavar="PATH",
                        help="unix socket path to listen on")
    parser.add_argument("--host", default="127.0.0.1",
                        help="TCP host to bind when --socket is not "
                        "given (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (default 0 = ephemeral; the "
                        "chosen port is printed on the readiness line)")
    parser.add_argument("--client-quota", type=int, default=16,
                        metavar="N",
                        help="max in-flight jobs per client connection "
                        "before submits get a structured quota error "
                        "(default 16)")
    add_engine_arguments(parser)
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="write the final stats snapshot here on "
                        "shutdown")
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="write a Chrome trace-event JSON of the "
                        "server's lifetime here on shutdown")
    parser.add_argument("--events-out", default=None, metavar="FILE",
                        help="write the JSONL job-lifecycle event log "
                        "here (shared by all clients)")
    args = parser.parse_args(argv)

    from ..observability import Tracer
    from ..profiling import Profiler

    profiler = Profiler()
    tracer = Tracer() if args.trace_out is not None else None
    events = EventLog(args.events_out)
    try:
        engine, _cache, _faults = build_engine(
            args, profiler=profiler, tracer=tracer, events=events)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    try:
        code = asyncio.run(_serve(args, engine))
    except KeyboardInterrupt:
        code = 0
    finally:
        engine.shutdown()
        if tracer is not None:
            tracer.write_chrome(args.trace_out)
        events.close()
    return code


if __name__ == "__main__":
    sys.exit(main())
