"""Clients for the ``repro-serve`` daemon, and the ``repro-submit``
CLI.

Two flavours over the same newline-delimited JSON protocol (see
:mod:`repro.service.server` for the frame vocabulary):

* :class:`AsyncServiceClient` — asyncio; one connection multiplexes
  any number of concurrent :meth:`~AsyncServiceClient.submit` calls
  (response frames are demultiplexed on the echoed request ``id``).
  This is what ``repro-batch --connect`` rides.
* :class:`ServiceClient` — blocking sockets, one request at a time;
  for scripts, tests, and the ``repro-submit`` CLI.

Server-side refusals (``draining``, ``quota``, ``bad-request``,
``internal``) surface as :class:`RemoteError` with the structured
``code`` preserved, so callers can branch on the refusal class
instead of parsing prose.
"""

from __future__ import annotations

import argparse
import asyncio
import itertools
import json
import socket
import sys
import threading
from typing import Callable, Dict, List, Optional, Tuple

from .engine import JobResult, JobStatus

EventCallback = Callable[[Dict[str, object]], None]


class RemoteError(RuntimeError):
    """A structured refusal from the server (or a dead connection).

    ``code`` is machine-readable: ``draining``, ``quota``,
    ``bad-request``, ``internal``, or ``disconnected``.
    """

    def __init__(self, code: str, message: str):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message


def parse_address(address: str) -> Tuple[str, str, Optional[int]]:
    """``HOST:PORT`` (numeric port, no path separators) is TCP;
    anything else is a unix socket path. Returns
    ``(kind, host_or_path, port)``."""
    host, sep, port = address.rpartition(":")
    if sep and port.isdigit() and "/" not in address \
            and "\\" not in address:
        return ("tcp", host or "127.0.0.1", int(port))
    return ("unix", address, None)


def result_from_frame(frame: Dict[str, object]) -> JobResult:
    """Rebuild a :class:`JobResult` from a ``result`` frame, so remote
    submissions hand callers the same object local ones do."""
    return JobResult(
        job_id=str(frame.get("job_id", "")),
        status=JobStatus(frame.get("status", "cancelled")),
        output=frame.get("output"),
        diagnostics=str(frame.get("diagnostics") or ""),
        key=str(frame.get("key") or ""),
        cache_hit=bool(frame.get("cache_hit")),
        output_digest=frame.get("output_digest"),
        coalesced=bool(frame.get("coalesced")),
        function_tier=bool(frame.get("function_tier")),
        worker_seconds=float(frame.get("worker_seconds") or 0.0),
        wall_seconds=float(frame.get("wall_seconds") or 0.0),
        attempts=int(frame.get("attempts") or 0),
        stats=dict(frame.get("stats") or {}),
    )


def _submit_request(payload_text, script_text, payload_path,
                    script_path, params, entry_point, job_id, priority,
                    timeout, stream) -> Dict[str, object]:
    request: Dict[str, object] = {"op": "submit"}
    if payload_text is not None:
        request["payload"] = payload_text
    if script_text is not None:
        request["script"] = script_text
    if payload_path is not None:
        request["payload_path"] = payload_path
    if script_path is not None:
        request["script_path"] = script_path
    if params is not None:
        request["params"] = params
    if entry_point is not None:
        request["entry_point"] = entry_point
    if job_id is not None:
        request["job_id"] = job_id
    if priority is not None:
        request["priority"] = priority
    if timeout is not None:
        request["timeout"] = timeout
    if stream:
        request["stream"] = True
    return request


class AsyncServiceClient:
    """Asyncio client; safe for concurrent requests on one
    connection. Construct with :meth:`connect`."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)
        self._pending: Dict[str, asyncio.Queue] = {}
        self._write_lock = asyncio.Lock()
        self._reader_task = asyncio.create_task(
            self._read_loop(), name="repro-client-reader"
        )

    @classmethod
    async def connect(cls, address: str) -> "AsyncServiceClient":
        kind, host, port = parse_address(address)
        if kind == "unix":
            reader, writer = await asyncio.open_unix_connection(host)
        else:
            reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    frame = json.loads(line)
                except ValueError:
                    continue
                if not isinstance(frame, dict):
                    continue
                queue = self._pending.get(frame.get("id"))
                if queue is not None:
                    queue.put_nowait(frame)
        except (ConnectionResetError, asyncio.CancelledError):
            pass
        finally:
            # Wake every waiter so a dropped connection fails fast
            # instead of hanging calls forever.
            eof = {"type": "error", "code": "disconnected",
                   "message": "server closed the connection"}
            for queue in self._pending.values():
                queue.put_nowait(dict(eof))

    async def _request(self, request: Dict[str, object]) \
            -> Tuple[str, asyncio.Queue]:
        rid = str(next(self._ids))
        request["id"] = rid
        queue: asyncio.Queue = asyncio.Queue()
        self._pending[rid] = queue
        data = (json.dumps(request) + "\n").encode()
        async with self._write_lock:
            self._writer.write(data)
            await self._writer.drain()
        return rid, queue

    async def _await_conclusion(self, rid: str, queue: asyncio.Queue,
                                on_event: Optional[EventCallback]) \
            -> Dict[str, object]:
        try:
            while True:
                frame = await queue.get()
                kind = frame.get("type")
                if kind == "event":
                    if on_event is not None:
                        on_event(frame)
                    continue
                if kind == "error":
                    raise RemoteError(
                        str(frame.get("code") or "internal"),
                        str(frame.get("message") or ""),
                    )
                return frame
        finally:
            self._pending.pop(rid, None)

    async def submit(self, payload_text: Optional[str] = None,
                     script_text: Optional[str] = None, *,
                     payload_path: Optional[str] = None,
                     script_path: Optional[str] = None,
                     params: Optional[dict] = None,
                     entry_point: Optional[str] = None,
                     job_id: Optional[str] = None,
                     priority: Optional[str] = None,
                     timeout: Optional[float] = None,
                     stream: bool = False,
                     on_event: Optional[EventCallback] = None) \
            -> JobResult:
        """Submit one job and await its :class:`JobResult`. With
        ``stream`` (implied by ``on_event``) the server forwards every
        lifecycle event record first."""
        stream = stream or on_event is not None
        rid, queue = await self._request(_submit_request(
            payload_text, script_text, payload_path, script_path,
            params, entry_point, job_id, priority, timeout, stream,
        ))
        frame = await self._await_conclusion(rid, queue, on_event)
        return result_from_frame(frame)

    async def _simple(self, request: Dict[str, object]) \
            -> Dict[str, object]:
        rid, queue = await self._request(request)
        return await self._await_conclusion(rid, queue, None)

    async def stats(self) -> Dict[str, object]:
        return await self._simple({"op": "stats"})

    async def ping(self) -> Dict[str, object]:
        return await self._simple({"op": "ping"})

    async def drain(self, stop: bool = False) -> Dict[str, object]:
        return await self._simple({"op": "drain", "stop": stop})

    async def reload(self, **changes: object) -> Dict[str, object]:
        return await self._simple({"op": "reload", **changes})

    async def close(self) -> None:
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except Exception:
            pass


class ServiceClient:
    """Blocking client: one request at a time (a lock enforces it),
    plain sockets, no event loop — importable from anywhere."""

    def __init__(self, address: str,
                 timeout: Optional[float] = None):
        kind, host, port = parse_address(address)
        if kind == "unix":
            self._sock = socket.socket(socket.AF_UNIX,
                                       socket.SOCK_STREAM)
            self._sock.connect(host)
        else:
            self._sock = socket.create_connection((host, port))
        if timeout is not None:
            self._sock.settimeout(timeout)
        self._file = self._sock.makefile("rwb")
        self._ids = itertools.count(1)
        self._lock = threading.Lock()

    def _roundtrip(self, request: Dict[str, object],
                   on_event: Optional[EventCallback] = None) \
            -> Dict[str, object]:
        with self._lock:
            rid = str(next(self._ids))
            request["id"] = rid
            self._file.write((json.dumps(request) + "\n").encode())
            self._file.flush()
            while True:
                line = self._file.readline()
                if not line:
                    raise RemoteError(
                        "disconnected",
                        "server closed the connection",
                    )
                try:
                    frame = json.loads(line)
                except ValueError:
                    continue
                if not isinstance(frame, dict) \
                        or frame.get("id") != rid:
                    continue
                kind = frame.get("type")
                if kind == "event":
                    if on_event is not None:
                        on_event(frame)
                    continue
                if kind == "error":
                    raise RemoteError(
                        str(frame.get("code") or "internal"),
                        str(frame.get("message") or ""),
                    )
                return frame

    def submit(self, payload_text: Optional[str] = None,
               script_text: Optional[str] = None, *,
               payload_path: Optional[str] = None,
               script_path: Optional[str] = None,
               params: Optional[dict] = None,
               entry_point: Optional[str] = None,
               job_id: Optional[str] = None,
               priority: Optional[str] = None,
               timeout: Optional[float] = None,
               stream: bool = False,
               on_event: Optional[EventCallback] = None) -> JobResult:
        stream = stream or on_event is not None
        frame = self._roundtrip(_submit_request(
            payload_text, script_text, payload_path, script_path,
            params, entry_point, job_id, priority, timeout, stream,
        ), on_event)
        return result_from_frame(frame)

    def stats(self) -> Dict[str, object]:
        return self._roundtrip({"op": "stats"})

    def ping(self) -> Dict[str, object]:
        return self._roundtrip({"op": "ping"})

    def drain(self, stop: bool = False) -> Dict[str, object]:
        return self._roundtrip({"op": "drain", "stop": stop})

    def reload(self, **changes: object) -> Dict[str, object]:
        return self._roundtrip({"op": "reload", **changes})

    def close(self) -> None:
        try:
            self._file.close()
        except Exception:
            pass
        try:
            self._sock.close()
        except Exception:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# repro-submit CLI
# ---------------------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-submit",
        description="submit one compile job to a running repro-serve "
        "daemon (or query/drain it)",
    )
    parser.add_argument("payload", nargs="?", default=None,
                        help="payload IR file or frontend .py module")
    parser.add_argument("--connect", required=True, metavar="ADDRESS",
                        help="server address: unix socket path or "
                        "HOST:PORT")
    parser.add_argument("--schedule", default=None, metavar="FILE",
                        help="transform script file or frontend .py "
                        "module (required with a payload)")
    parser.add_argument("--entry-point", default=None,
                        help="named sequence to run")
    parser.add_argument("--param", action="append", default=None,
                        metavar="NAME=VALUE",
                        help="parameter binding (repeatable; VALUE "
                        "may be a comma list)")
    parser.add_argument("--priority", default="interactive",
                        choices=("interactive", "batch", "background"),
                        help="priority class (default interactive: a "
                        "human is waiting)")
    parser.add_argument("--job-id", default=None,
                        help="job id for correlation (default: server "
                        "assigned)")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-job deadline in seconds")
    parser.add_argument("--follow", action="store_true",
                        help="stream lifecycle events to stderr while "
                        "the job runs")
    parser.add_argument("-o", "--output", default=None, metavar="FILE",
                        help="write the transformed module here "
                        "(default stdout)")
    parser.add_argument("--stats", action="store_true",
                        help="print the server stats snapshot and exit")
    parser.add_argument("--ping", action="store_true",
                        help="health-check the server and exit")
    parser.add_argument("--drain", action="store_true",
                        help="drain the server (finish admitted jobs, "
                        "refuse new submits) and exit")
    parser.add_argument("--stop", action="store_true",
                        help="with --drain: stop the server after the "
                        "drain completes")
    args = parser.parse_args(argv)

    try:
        client = ServiceClient(args.connect)
    except OSError as error:
        print(f"error: cannot connect to {args.connect}: {error}",
              file=sys.stderr)
        return 2

    try:
        if args.ping:
            print(json.dumps(client.ping()))
            return 0
        if args.stats:
            print(json.dumps(client.stats(), indent=2))
            return 0
        if args.drain:
            print(json.dumps(client.drain(stop=args.stop)))
            return 0
        if args.payload is None or args.schedule is None:
            print("error: need a payload and --schedule "
                  "(or --stats/--ping/--drain)", file=sys.stderr)
            return 2
        from .frontier import _parse_params
        try:
            params = _parse_params(args.param)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2

        def on_event(frame: Dict[str, object]) -> None:
            print("event: {} {}".format(
                frame.get("event"),
                json.dumps({k: v for k, v in frame.items()
                            if k not in ("type", "id", "v", "event")}),
            ), file=sys.stderr)

        from ..frontend.loader import (
            read_payload_source,
            read_schedule_source,
        )
        try:
            payload_text = read_payload_source(args.payload)
            script_text = read_schedule_source(args.schedule)
        except Exception as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        try:
            result = client.submit(
                payload_path=None,
                script_path=None,
                payload_text=payload_text,
                script_text=script_text,
                params=params,
                entry_point=args.entry_point,
                job_id=args.job_id,
                priority=args.priority,
                timeout=args.timeout,
                on_event=on_event if args.follow else None,
            )
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        tag = result.status.value
        if result.cache_hit:
            tag += " (cached)"
        print(f"{result.job_id}: {tag}", file=sys.stderr)
        if not result.ok:
            if result.diagnostics:
                print(result.diagnostics, file=sys.stderr)
            return 1
        text = (result.output or "") + "\n"
        if args.output is not None:
            with open(args.output, "w") as handle:
                handle.write(text)
        else:
            sys.stdout.write(text)
        return 0
    except RemoteError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        client.close()


if __name__ == "__main__":
    sys.exit(main())
