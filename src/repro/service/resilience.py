"""Resilience policies for the compile service.

The engine's original failure handling was a collection of hardcoded
reflexes: crash containment was a single immediate retry, a hung
worker was killed but its job simply reported TIMEOUT, and a job that
killed the pool every time it ran would restart the pool forever. This
module replaces those reflexes with explicit, configurable policy
objects, all deterministic so the fault-injection harness
(:mod:`repro.testing.faults`) can replay any recovery decision:

* :class:`RetryPolicy` — how many attempts a job gets, which terminal
  statuses are retry-eligible, and the exponential backoff (with
  *deterministic* jitter derived from the job's content key, never
  from a global RNG) between attempts;
* :class:`QuarantinePolicy` / :class:`JobQuarantine` — a circuit
  breaker keyed on the job's content address: a job that crashes or
  times out the pool ``threshold`` times is quarantined and reports
  ``POISONED`` immediately instead of restarting the pool forever;
* :class:`PoolHealthPolicy` / :class:`PoolHealthMonitor` — crash-loop
  detection: ``max_restarts`` pool restarts inside a sliding
  ``window_seconds`` degrades the engine to in-process (``workers=0``)
  execution with a diagnostic, trading throughput for liveness
  instead of thrashing the pool.

Every policy is cheap when idle — the engine only pays a dictionary
lookup or a deque scan on the failure paths, never on the hot path of
a healthy job.
"""

from __future__ import annotations

import hashlib
import struct
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, FrozenSet, Optional

#: Statuses a retry/quarantine policy may be asked about. These are the
#: string values of :class:`repro.service.engine.JobStatus` — strings,
#: not the enum, so this module stays import-light and picklable.
_POOL_FAILURES = frozenset({"crashed", "timeout"})


def _unit_interval(*fields: object) -> float:
    """Deterministic value in ``[0, 1)`` derived from ``fields``.

    SHA-256 based (not ``hash()``, which is salted per process) so the
    same (key, attempt) pair yields the same jitter in every process,
    every run — a recovery schedule is replayable from its inputs.
    """
    hasher = hashlib.sha256()
    for item in fields:
        data = str(item).encode()
        hasher.update(struct.pack(">Q", len(data)))
        hasher.update(data)
    return int.from_bytes(hasher.digest()[:8], "big") / 2**64


@dataclass(frozen=True)
class RetryPolicy:
    """When and how to re-attempt a failed pool execution.

    ``max_attempts`` bounds total executions (1 = never retry).
    ``retry_statuses`` names the status strings eligible for retry —
    ``{"crashed"}`` reproduces the historical retry-once-on-crash
    behaviour; adding ``"timeout"`` lets a transiently hung job get
    another worker. Backoff before attempt *n+1* is::

        min(max_backoff, base_backoff * multiplier**(n-1))
            * (1 + jitter * u(key, n))

    with ``u`` the deterministic unit-interval hash of the job key and
    attempt number — concurrent retries of different jobs decorrelate
    without any shared RNG state.
    """

    max_attempts: int = 2
    retry_statuses: FrozenSet[str] = frozenset({"crashed"})
    base_backoff: float = 0.0
    backoff_multiplier: float = 2.0
    max_backoff: float = 1.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_backoff < 0 or self.max_backoff < 0:
            raise ValueError("backoff seconds must be >= 0")
        unknown = frozenset(self.retry_statuses) - _POOL_FAILURES
        if unknown:
            raise ValueError(
                f"retry_statuses may only name pool failures "
                f"{sorted(_POOL_FAILURES)}, got {sorted(unknown)}"
            )

    @staticmethod
    def none() -> "RetryPolicy":
        """No retries at all (every failure is terminal)."""
        return RetryPolicy(max_attempts=1, retry_statuses=frozenset())

    def should_retry(self, status: str, attempts: int) -> bool:
        """True when a job that just failed with ``status`` after
        ``attempts`` executions deserves another one."""
        return (attempts < self.max_attempts
                and status in self.retry_statuses)

    def backoff_seconds(self, key: str, attempts: int) -> float:
        """Delay before the attempt following ``attempts`` failures."""
        if self.base_backoff <= 0:
            return 0.0
        raw = self.base_backoff * (
            self.backoff_multiplier ** max(attempts - 1, 0)
        )
        capped = min(self.max_backoff, raw)
        return capped * (1.0 + self.jitter * _unit_interval(key, attempts))


@dataclass(frozen=True)
class QuarantinePolicy:
    """Circuit-breaker configuration for poison jobs.

    A job whose content key accumulates ``threshold`` failures with a
    status in ``statuses`` is quarantined: subsequent executions (and
    re-submissions of the same content) short-circuit to ``POISONED``
    without touching the pool. Crashes and timeouts are the default
    because those are the failure modes that *damage the pool* — a
    definite compile error is cheap and deterministic and needs no
    breaker.
    """

    threshold: int = 3
    statuses: FrozenSet[str] = _POOL_FAILURES

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ValueError("quarantine threshold must be >= 1")


class JobQuarantine:
    """Thread-safe failure ledger implementing a :class:`QuarantinePolicy`.

    Keys are job content addresses (:func:`repro.service.cache.cache_key`),
    so a poison job is recognized across re-submissions, coalesced
    duplicates, and — with a disk cache — across engines sharing one
    process. The ledger is bounded only by distinct failing keys;
    healthy jobs never appear in it.
    """

    def __init__(self, policy: Optional[QuarantinePolicy] = None):
        self.policy = policy or QuarantinePolicy()
        self._failures: Dict[str, int] = {}
        self._poisoned: Dict[str, str] = {}
        self._lock = threading.Lock()

    def record_failure(self, key: str, status: str) -> bool:
        """Count one failure; True when ``key`` just became poisoned."""
        if status not in self.policy.statuses:
            return False
        with self._lock:
            count = self._failures.get(key, 0) + 1
            self._failures[key] = count
            if count >= self.policy.threshold and key not in self._poisoned:
                self._poisoned[key] = status
                return True
            return False

    def is_poisoned(self, key: str) -> bool:
        with self._lock:
            return key in self._poisoned

    def diagnose(self, key: str) -> str:
        """Human-readable reason for a poisoned key."""
        with self._lock:
            status = self._poisoned.get(key, "failure")
            count = self._failures.get(key, self.policy.threshold)
        return (
            f"error: job quarantined as poisoned after {count} pool "
            f"{status} failure(s) (circuit breaker threshold "
            f"{self.policy.threshold}); it will not be retried until "
            f"the quarantine is cleared"
        )

    @property
    def poisoned_count(self) -> int:
        with self._lock:
            return len(self._poisoned)

    def clear(self) -> None:
        """Forget everything (e.g. after a transform-stack upgrade)."""
        with self._lock:
            self._failures.clear()
            self._poisoned.clear()


@dataclass(frozen=True)
class PoolHealthPolicy:
    """Crash-loop detection: ``max_restarts`` pool restarts within any
    ``window_seconds`` span means the pool is doing more dying than
    working, and the engine degrades to in-process execution."""

    max_restarts: int = 6
    window_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.max_restarts < 1:
            raise ValueError("max_restarts must be >= 1")
        if self.window_seconds <= 0:
            raise ValueError("window_seconds must be > 0")


@dataclass
class PoolHealthMonitor:
    """Sliding-window restart counter implementing
    :class:`PoolHealthPolicy`. Thread-safe; ``record_restart`` returns
    True exactly once, at the moment the crash loop is detected."""

    policy: PoolHealthPolicy = field(default_factory=PoolHealthPolicy)
    _restarts: Deque[float] = field(default_factory=deque)
    _lock: threading.Lock = field(default_factory=threading.Lock)
    _tripped: bool = False

    def record_restart(self, now: Optional[float] = None) -> bool:
        """Record one pool restart; True when this restart tips the
        window over ``max_restarts`` (the caller should degrade)."""
        if now is None:
            now = time.monotonic()
        with self._lock:
            if self._tripped:
                return False
            self._restarts.append(now)
            horizon = now - self.policy.window_seconds
            while self._restarts and self._restarts[0] < horizon:
                self._restarts.popleft()
            if len(self._restarts) >= self.policy.max_restarts:
                self._tripped = True
                return True
            return False

    @property
    def tripped(self) -> bool:
        with self._lock:
            return self._tripped

    @property
    def recent_restarts(self) -> int:
        with self._lock:
            return len(self._restarts)
