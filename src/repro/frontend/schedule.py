"""A fluent, typed builder for transform scripts.

``Schedule().match("linalg.matmul").tile(sizes=[32, 32]).unroll(4)``
emits the same transform IR one would write by hand, with two
guarantees the textual path cannot give:

* **Use-after-consume is a Python error.** Every emitted transform op
  consults the op class's ``CONSUMES`` contract (§3.1); consuming a
  handle marks it dead at build time, so reusing it raises
  :class:`~repro.frontend.errors.ScheduleError` before ``repro-lint``
  (let alone the interpreter) ever sees the script.
* **Lint-clean by construction.** Because the builder refuses stale
  handles and only ``include``\\ s sequences it knows are defined, the
  emitted script carries zero error-severity ``repro-lint``
  diagnostics (dead-handle/dead-macro *warnings* remain possible —
  they are advisory).

The **cursor** is the implicit subject of the chain: ``match`` sets
it, in-place transforms keep it, and a consuming transform moves it to
its main result (``tile`` → the inner loop, ``split`` → the main
part). When a consuming transform returns nothing (``unroll``,
``to_library``), the cursor falls back to the most recently created
handle still live — after ``.tile(...).unroll(4)`` the chain continues
on the *outer* tile loop.

``param(value, binding="NAME")`` emits ``transform.param.constant
{binding = "NAME"}``, the anchor the service's parameter-override path
(``bind_parameters``) and the autotuner rebind per configuration.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..core import dialect as transform
from ..core.schedules import link_schedule_library
from ..core.types import ANY_OP
from ..dialects import builtin
from ..ir.builder import Builder
from ..ir.core import Operation, Value
from ..ir.hashing import op_digest
from ..ir.printer import print_op
from .errors import ScheduleError

__all__ = ["Handle", "Schedule"]


class Handle:
    """One transform handle (or param) tracked by the builder."""

    __slots__ = ("value", "kind", "is_param", "label", "consumed_by",
                 "_scope", "_down")

    def __init__(self, scope: "_Scope", value: Value,
                 kind: Optional[str] = None, is_param: bool = False,
                 label: Optional[str] = None):
        self._scope = scope
        self.value = value
        self.kind = kind
        self.is_param = is_param
        self.label = label
        self.consumed_by: Optional[str] = None
        #: Handles invalidated together with this one — the builder's
        #: mirror of the lint's derivation edges (nested match results,
        #: select/merge subset aliases).
        self._down: List["Handle"] = []

    @property
    def live(self) -> bool:
        return self.consumed_by is None

    def __repr__(self) -> str:
        state = f"consumed by {self.consumed_by}" if self.consumed_by \
            else "live"
        name = self.label or self.kind or ("param" if self.is_param
                                           else "any")
        return f"<handle {name}: {state}>"


class _MacroInfo:
    __slots__ = ("consumes", "n_results")

    def __init__(self, consumes: Tuple[int, ...], n_results: int):
        self.consumes = consumes
        self.n_results = n_results


#: Consumption/result contracts of the shipped schedule library
#: (``repro.core.schedules``), used by ``include`` after
#: ``use_library()``.
_LIBRARY_MACROS = {
    "tile_and_unroll_remainder": _MacroInfo((0,), 1),
    "offload_to_microkernel": _MacroInfo((0,), 0),
    "lower_to_llvm": _MacroInfo((), 1),
}


class _Scope:
    """Shared emission machinery for the entry sequence, macro bodies,
    and ``alternatives`` regions."""

    def __init__(self, schedule: "Schedule", builder: Builder,
                 root: Optional[Handle],
                 parent: Optional["_Scope"] = None):
        self._schedule = schedule
        self._builder = builder
        self._root = root
        self._parent = parent
        self._cursor: Optional[Handle] = None
        self._named: Dict[str, Handle] = {}
        self._live: List[Handle] = []
        self._open = True

    # -- bookkeeping -------------------------------------------------------

    def _require_open(self, what: str) -> None:
        if not self._open:
            raise ScheduleError(
                f"cannot emit '{what}': this scope is closed "
                "(its region/sequence has already been finalized)"
            )
        self._schedule._require_unbuilt(what)

    def _register(self, handle: Handle,
                  name: Optional[str] = None) -> Handle:
        self._live.append(handle)
        if name is not None:
            handle.label = name
            self._named[name] = handle
        return handle

    def _lookup(self, name: str) -> Handle:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope._named:
                return scope._named[name]
            scope = scope._parent
        raise ScheduleError(f"no handle named {name!r} in scope")

    def _resolve(self, ref: Union[Handle, str]) -> Handle:
        if isinstance(ref, str):
            return self._lookup(ref)
        if not isinstance(ref, Handle):
            raise ScheduleError(f"expected a handle or name, got {ref!r}")
        if ref._scope._schedule is not self._schedule:
            raise ScheduleError(
                "handle belongs to a different Schedule"
            )
        return ref

    def _operand(self, ref: Union[Handle, str], op: str, *,
                 consume: bool = False) -> Handle:
        handle = self._resolve(ref)
        if not handle.live:
            who = handle.label or handle.kind or "handle"
            raise ScheduleError(
                f"use-after-consume: {who} was already consumed by "
                f"'{handle.consumed_by}' and cannot be passed to '{op}'"
            )
        if consume:
            self._invalidate(handle, op)
        return handle

    def _invalidate(self, handle: Handle, op: str) -> None:
        """Mark ``handle`` consumed, plus its whole derivation closure
        — exactly the set the lint's invalidation analysis would flag
        (subset aliases both ways, nested handles downward)."""
        stack = [handle]
        while stack:
            current = stack.pop()
            if not current.live:
                continue
            current.consumed_by = op
            owner = current._scope
            if current in owner._live:
                owner._live.remove(current)
            stack.extend(current._down)

    @staticmethod
    def _link_nested(source: Handle, result: Handle) -> None:
        """Result payload nested in source: consuming the source kills
        the result (``match_op``'s derivation rule)."""
        source._down.append(result)

    @staticmethod
    def _link_subset(a: Handle, b: Handle) -> None:
        """Equal/subset payloads: consuming either kills the other
        (``select``/``merge_handles``'s derivation rule)."""
        a._down.append(b)
        b._down.append(a)

    def _cursor_handle(self, op: str) -> Handle:
        if self._cursor is None or not self._cursor.live:
            raise ScheduleError(
                f"'{op}' needs a current handle: start the chain with "
                ".match(...) or .use(name)"
            )
        return self._cursor

    def _fallback_cursor(self) -> None:
        self._cursor = self._live[-1] if self._live else None

    def _new(self, value: Value, kind: Optional[str] = None,
             name: Optional[str] = None) -> Handle:
        return self._register(Handle(self, value, kind=kind), name)

    def _sizes_arg(self, sizes, op: str):
        """An int list stays an attribute; a param handle becomes an
        operand (the tunable form)."""
        if isinstance(sizes, Handle) or isinstance(sizes, str):
            handle = self._operand(sizes, op)
            if not handle.is_param:
                raise ScheduleError(
                    f"'{op}' sizes must be ints or a param handle"
                )
            return handle.value
        return sizes

    # -- handle navigation -------------------------------------------------

    @property
    def root(self) -> Handle:
        if self._root is None:
            raise ScheduleError("this scope has no root handle")
        return self._root

    def handle(self, name: str) -> Handle:
        """Look up a named handle (raises if unknown)."""
        return self._lookup(name)

    def use(self, ref: Union[Handle, str]) -> "_Scope":
        """Make a (named) handle the cursor."""
        self._cursor = self._operand(ref, "use")
        return self

    def match(self, names: Union[str, Sequence[str]],
              position: str = "all",
              in_: Optional[Union[Handle, str]] = None,
              name: Optional[str] = None) -> "_Scope":
        """``transform.match_op``: select payload ops by name."""
        self._require_open("match")
        scope = self._operand(in_, "match") if in_ is not None else self.root
        result = transform.match_op(self._builder, scope.value, names,
                                    position=position)
        kind = names if isinstance(names, str) else None
        self._cursor = self._new(result, kind=kind, name=name)
        if in_ is not None:
            self._link_nested(scope, self._cursor)
        return self

    def select(self, op_name: str, name: Optional[str] = None) -> "_Scope":
        """``transform.select``: filter the cursor by payload op name."""
        self._require_open("select")
        handle = self._cursor_handle("select")
        result = transform.select(self._builder, handle.value, op_name)
        self._cursor = self._new(result, kind=op_name, name=name)
        self._link_subset(handle, self._cursor)
        return self

    def merge(self, *refs: Union[Handle, str],
              name: Optional[str] = None) -> "_Scope":
        """``transform.merge_handles`` over the given handles."""
        self._require_open("merge")
        handles = [self._operand(ref, "merge") for ref in refs]
        if not handles:
            raise ScheduleError("merge needs at least one handle")
        result = self._builder.create(
            "transform.merge_handles",
            operands=[h.value for h in handles],
            result_types=[ANY_OP],
        ).result
        self._cursor = self._new(result, name=name)
        for handle in handles:
            self._link_subset(handle, self._cursor)
        return self

    def param(self, value: Union[int, Sequence[int]],
              binding: Optional[str] = None,
              name: Optional[str] = None) -> Handle:
        """``transform.param.constant``; a ``binding`` makes it a named
        autotuning knob for the service override path. Returns the
        param handle (params never become the cursor)."""
        self._require_open("param")
        result = transform.param_constant(self._builder, value)
        if binding is not None:
            result.defining_op().set_attr("binding", binding)
        handle = Handle(self, result, is_param=True, label=name or binding)
        if name is not None:
            self._named[name] = handle
        return handle

    # -- loop transforms ---------------------------------------------------

    def tile(self, sizes, keep: str = "inner",
             names: Optional[Tuple[str, str]] = None) -> "_Scope":
        """``transform.loop.tile``: consumes the cursor loop, produces
        (outer, inner); the cursor moves to ``keep``. ``sizes`` may be
        an int list (an attribute), one param handle carrying a list,
        or a list of param handles (one operand per size)."""
        self._require_open("tile")
        handle = self._cursor_handle("tile")
        if isinstance(sizes, (list, tuple)) and any(
                isinstance(size, (Handle, str)) for size in sizes):
            params = [self._operand(size, "tile") for size in sizes]
            if not all(p.is_param for p in params):
                raise ScheduleError(
                    "tile sizes must be all ints or all param handles"
                )
            self._operand(handle, "tile", consume=True)
            op = self._builder.create(
                "transform.loop.tile",
                operands=[handle.value] + [p.value for p in params],
                result_types=[ANY_OP, ANY_OP],
            )
            outer, inner = op.results[0], op.results[1]
        else:
            sizes = self._sizes_arg(sizes, "tile")
            self._operand(handle, "tile", consume=True)
            outer, inner = transform.loop_tile(self._builder, handle.value,
                                               sizes)
        outer_h = self._new(outer, kind="scf.for",
                            name=names[0] if names else None)
        inner_h = self._new(inner, kind="scf.for",
                            name=names[1] if names else None)
        if keep not in ("outer", "inner"):
            raise ScheduleError("tile keep= must be 'outer' or 'inner'")
        self._cursor = outer_h if keep == "outer" else inner_h
        return self

    def split(self, div_by, keep: str = "main",
              names: Optional[Tuple[str, str]] = None) -> "_Scope":
        """``transform.loop.split`` into (main, rest)."""
        self._require_open("split")
        div_by = self._sizes_arg(div_by, "split")
        handle = self._cursor_handle("split")
        self._operand(handle, "split", consume=True)
        main, rest = transform.loop_split(self._builder, handle.value,
                                          div_by)
        main_h = self._new(main, kind="scf.for",
                           name=names[0] if names else None)
        rest_h = self._new(rest, kind="scf.for",
                           name=names[1] if names else None)
        if keep not in ("main", "rest"):
            raise ScheduleError("split keep= must be 'main' or 'rest'")
        self._cursor = main_h if keep == "main" else rest_h
        return self

    def peel(self, keep: str = "main",
             names: Optional[Tuple[str, str]] = None) -> "_Scope":
        """``transform.loop.peel`` into (main, remainder)."""
        self._require_open("peel")
        handle = self._cursor_handle("peel")
        self._operand(handle, "peel", consume=True)
        op = self._builder.create(
            "transform.loop.peel",
            operands=[handle.value],
            result_types=[ANY_OP, ANY_OP],
        )
        main_h = self._new(op.results[0], kind="scf.for",
                           name=names[0] if names else None)
        rest_h = self._new(op.results[1], kind="scf.for",
                           name=names[1] if names else None)
        if keep not in ("main", "rest"):
            raise ScheduleError("peel keep= must be 'main' or 'rest'")
        self._cursor = main_h if keep == "main" else rest_h
        return self

    def unroll(self, factor: Optional[int] = None,
               full: bool = False) -> "_Scope":
        """``transform.loop.unroll``: consumes the cursor loop; the
        cursor falls back to the most recent live handle."""
        self._require_open("unroll")
        handle = self._cursor_handle("unroll")
        self._operand(handle, "unroll", consume=True)
        transform.loop_unroll(self._builder, handle.value, factor=factor,
                              full=full)
        self._fallback_cursor()
        return self

    def interchange(self, with_: Union[Handle, str]) -> "_Scope":
        """``transform.loop.interchange`` of the cursor and another
        loop handle (both stay live)."""
        self._require_open("interchange")
        outer = self._cursor_handle("interchange")
        inner = self._operand(with_, "interchange")
        transform.loop_interchange(self._builder, outer.value, inner.value)
        return self

    def hoist(self, target: Optional[Union[Handle, str]] = None) -> "_Scope":
        """``transform.loop.hoist`` (in place)."""
        self._require_open("hoist")
        handle = self._cursor_handle("hoist")
        target_value = (self._operand(target, "hoist").value
                        if target is not None else None)
        transform.loop_hoist(self._builder, handle.value, target_value)
        return self

    def vectorize(self, width: Union[int, Handle, str] = 8) -> "_Scope":
        """``transform.loop.vectorize`` (in place); width may be a
        param handle."""
        self._require_open("vectorize")
        handle = self._cursor_handle("vectorize")
        width = self._sizes_arg(width, "vectorize") \
            if not isinstance(width, int) else width
        transform.loop_vectorize(self._builder, handle.value, width)
        return self

    # -- structured transforms ---------------------------------------------

    def generalize(self) -> "_Scope":
        """``transform.structured.generalize`` (consumes, recurses)."""
        self._require_open("generalize")
        handle = self._cursor_handle("generalize")
        self._operand(handle, "generalize", consume=True)
        op = self._builder.create(
            "transform.structured.generalize",
            operands=[handle.value],
            result_types=[ANY_OP],
        )
        self._cursor = self._new(op.result, kind="linalg.generic")
        return self

    def lower_to_loops(self) -> "_Scope":
        """``transform.structured.lower_to_loops`` (consumes)."""
        self._require_open("lower_to_loops")
        handle = self._cursor_handle("lower_to_loops")
        self._operand(handle, "lower_to_loops", consume=True)
        op = self._builder.create(
            "transform.structured.lower_to_loops",
            operands=[handle.value],
            result_types=[ANY_OP],
        )
        self._cursor = self._new(op.result, kind="scf.for")
        return self

    def to_library(self, library: str = "libxsmm") -> "_Scope":
        """``transform.to_library``: replace the cursor nest with a
        microkernel call (consumes)."""
        self._require_open("to_library")
        handle = self._cursor_handle("to_library")
        self._operand(handle, "to_library", consume=True)
        transform.to_library(self._builder, handle.value, library)
        self._fallback_cursor()
        return self

    # -- pass/pattern application and annotations ---------------------------

    def apply_registered_pass(self, pass_name: str,
                              options: Optional[Dict[str, object]] = None,
                              name: Optional[str] = None) -> "_Scope":
        self._require_open("apply_registered_pass")
        handle = self._cursor_handle("apply_registered_pass")
        result = transform.apply_registered_pass(
            self._builder, handle.value, pass_name, options)
        self._cursor = self._new(result, name=name)
        return self

    def apply_patterns(self, *pattern_names: str) -> "_Scope":
        self._require_open("apply_patterns")
        handle = self._cursor_handle("apply_patterns")
        transform.apply_patterns(self._builder, handle.value,
                                 list(pattern_names))
        return self

    def annotate(self, attr_name: str, value=None) -> "_Scope":
        """``transform.annotate`` the cursor's payload (in place)."""
        self._require_open("annotate")
        handle = self._cursor_handle("annotate")
        if isinstance(value, Handle):
            value = self._operand(value, "annotate").value
        transform.annotate(self._builder, handle.value, attr_name, value)
        return self

    def print_(self, message: str = "") -> "_Scope":
        self._require_open("print")
        handle = self._cursor_handle("print")
        transform.print_(self._builder, handle.value, message)
        return self

    # -- control flow -------------------------------------------------------

    def alternatives(self, *regions: Optional[Callable[["_Scope"], None]],
                     scope: Optional[Union[Handle, str]] = None) -> "_Scope":
        """``transform.alternatives``: each callable populates one
        region against a nested scope; ``None`` leaves an empty
        (always-succeeding) fallback region. Handles consumed inside
        any region are conservatively dead afterwards."""
        self._require_open("alternatives")
        if not regions:
            raise ScheduleError("alternatives needs at least one region")
        scope_handle = (self._operand(scope, "alternatives")
                        if scope is not None else None)
        op = transform.alternatives(
            self._builder, n_regions=len(regions),
            scope=scope_handle.value if scope_handle else None)
        for body, region in zip(regions, op.regions):
            if body is None:
                continue
            nested = _Scope(self._schedule,
                            Builder.at_end(region.entry_block),
                            self._root, parent=self)
            nested._cursor = scope_handle or self._cursor
            body(nested)
            nested._close("end of alternatives region")
        return self

    def include(self, target: str,
                args: Sequence[Union[Handle, str]] = (),
                name: Optional[str] = None) -> "_Scope":
        """``transform.include`` of a macro defined with
        :meth:`Schedule.define` (or, after :meth:`Schedule.use_library`,
        a shipped library sequence). Arguments the macro consumes are
        marked consumed here, interprocedurally."""
        self._require_open("include")
        info = self._schedule._macro_info(target)
        handles = [self._operand(ref, f"include @{target}")
                   for ref in args]
        if not handles:
            handles = [self._cursor_handle(f"include @{target}")]
        for index in info.consumes:
            if index < len(handles):
                self._operand(handles[index], f"include @{target}",
                              consume=True)
        results_op = transform.include(
            self._builder, target, [h.value for h in handles],
            n_results=info.n_results)
        if info.n_results:
            self._cursor = self._new(results_op.results[0], name=name)
            for extra in results_op.results[1:]:
                self._new(extra)
        elif self._cursor is not None and not self._cursor.live:
            self._fallback_cursor()
        return self

    def _close(self, reason: str) -> None:
        for handle in list(self._live):
            handle.consumed_by = reason
        self._live.clear()
        self._open = False


class Schedule(_Scope):
    """The fluent schedule builder (entry ``transform.sequence``)."""

    def __init__(self):
        op, builder, root_value = transform.sequence()
        super().__init__(self, builder, None)
        self._root = Handle(self, root_value, label="root")
        self._sequence_op = op
        self._macros: Dict[str, _MacroInfo] = {}
        self._macro_ops: List[Operation] = []
        self._use_library = False
        self._built: Optional[Operation] = None

    # -- macro definitions ---------------------------------------------------

    def _require_unbuilt(self, what: str) -> None:
        if self._built is not None:
            raise ScheduleError(
                f"cannot emit '{what}': this schedule is already built"
            )

    def _macro_info(self, target: str) -> _MacroInfo:
        if target in self._macros:
            return self._macros[target]
        if self._use_library and target in _LIBRARY_MACROS:
            return _LIBRARY_MACROS[target]
        known = sorted(self._macros)
        if self._use_library:
            known += sorted(_LIBRARY_MACROS)
        raise ScheduleError(
            f"include of unknown sequence @{target}; define it with "
            f".define(...) first (known: {known or 'none'})"
        )

    def use_library(self) -> "Schedule":
        """Link the shipped schedule library into the built module so
        its sequences are includable."""
        self._require_unbuilt("use_library")
        self._use_library = True
        return self

    def define(self, name: str,
               body: Callable[["_Scope"], Optional[Union[Handle,
                                                         Sequence[Handle]]]],
               n_args: int = 1) -> "Schedule":
        """Define a ``transform.named_sequence`` macro. ``body`` runs
        against a fresh scope whose cursor is the first argument; any
        handle(s) it returns become the macro's yielded results."""
        self._require_unbuilt("define")
        if name in self._macros:
            raise ScheduleError(f"sequence @{name} is already defined")
        op, builder, arg_values = transform.named_sequence(name,
                                                           n_args=n_args)
        scope = _Scope(self, builder, None)
        arg_handles = [Handle(scope, value, label=f"arg{i}")
                       for i, value in enumerate(arg_values)]
        scope._root = arg_handles[0]
        scope._cursor = arg_handles[0]
        for i, handle in enumerate(arg_handles):
            scope._named[f"arg{i}"] = handle
        returned = body(scope)
        if returned is None:
            yielded: List[Handle] = []
        elif isinstance(returned, Handle):
            yielded = [returned]
        else:
            yielded = list(returned)
        values = [scope._operand(h, "yield").value for h in yielded]
        transform.yield_(builder, values)
        consumes = tuple(i for i, handle in enumerate(arg_handles)
                         if not handle.live)
        scope._close(f"end of named sequence @{name}")
        self._macros[name] = _MacroInfo(consumes, len(values))
        self._macro_ops.append(op)
        return self

    # -- products ------------------------------------------------------------

    def build(self) -> Operation:
        """Finalize and return the transform script (idempotent)."""
        if self._built is not None:
            return self._built
        transform.yield_(self._builder)
        if self._macro_ops or self._use_library:
            module = builtin.module()
            for macro in self._macro_ops:
                module.body.append(macro)
            module.body.append(self._sequence_op)
            if self._use_library:
                link_schedule_library(module)
            self._built = module
        else:
            self._built = self._sequence_op
        self._close("schedule built")
        return self._built

    @property
    def script(self) -> Operation:
        return self.build()

    @property
    def mlir(self) -> str:
        return print_op(self.build())

    @property
    def digest(self) -> str:
        return op_digest(self.build())

    def lint(self, **kwargs):
        """Run ``repro-lint`` over the built script and return the
        diagnostic engine."""
        from ..analysis.lint import lint_script
        return lint_script(self.build(), **kwargs)
