"""`repro.frontend`: a Python eDSL for payloads and schedules.

Two authoring surfaces over the textual IR the rest of the system
speaks (ROADMAP item 3; nelli-style tracing + the structured-codegen
fluent schedule shape):

* :func:`jit` traces a restricted Python function into a `repro.ir`
  module — ``range`` loops become ``scf.for``, scalar arithmetic
  becomes ``arith``, and the NumPy-ish helpers in
  :mod:`repro.frontend.ops` become ``tosa``/``linalg``/``tensor`` ops.
  Traced modules are digest-stable under print→parse round-trip, so
  they key the compile-service caches exactly like textual payloads.
* :class:`Schedule` builds transform scripts fluently
  (``Schedule().match("linalg.matmul").tile(sizes=[32, 32]).unroll(4)``)
  with build-time handle-consumption tracking: use-after-consume is a
  Python :class:`ScheduleError`, and emitted scripts pass ``repro-lint``
  with no error-severity diagnostics by construction.

``repro-batch`` / ``repro-submit`` accept ``.py`` modules using either
surface via :mod:`repro.frontend.loader`.
"""

from . import ops
from .errors import FrontendError, ScheduleError, TraceError
from .loader import (
    load_payload_text,
    load_schedule_text,
    read_payload_source,
    read_schedule_source,
)
from .schedule import Handle, Schedule
from .tracer import Tensor, TracedFunction, TracedValue, jit
from ..ir.types import F16, F32, F64, I1, I32, I64, INDEX

__all__ = [
    "F16", "F32", "F64", "I1", "I32", "I64", "INDEX",
    "FrontendError", "Handle", "Schedule", "ScheduleError", "Tensor",
    "TraceError", "TracedFunction", "TracedValue", "jit",
    "load_payload_text", "load_schedule_text", "ops",
    "read_payload_source", "read_schedule_source",
]
