"""Payload tracing: a nelli-style embedded frontend for `repro.ir`.

A function decorated with :func:`jit` is *staged*: it runs once, in
Python, against :class:`TracedValue` proxies, and every operation it
performs is recorded as IR. ``range`` loops become ``scf.for``, scalar
arithmetic becomes ``arith`` ops, and the NumPy-ish tensor helpers in
:mod:`repro.frontend.ops` become ``tosa``/``linalg``/``tensor`` ops.
Shapes and dtypes come from parameter annotations
(``x: Tensor[32, 32]``, ``i: I64``).

The subset is deliberately restricted — data-dependent control flow
(``if traced_value:``), values escaping their loop region, and
un-annotated parameters all raise :class:`~repro.frontend.errors.TraceError`
at trace time rather than producing broken IR.

Every traced module carries a structural guarantee: by default the
tracer checks that ``op_digest(parse(print(module))) ==
op_digest(module)``, so traced payloads key the digest-addressed
compile caches exactly like their printed form.
"""

from __future__ import annotations

import inspect
import types as _pytypes
from typing import Callable, List, Optional, Sequence

from ..dialects import arith, builtin, func, scf
from ..ir.builder import Builder
from ..ir.core import Operation, Value
from ..ir.hashing import op_digest
from ..ir.parser import parse
from ..ir.printer import print_op
from ..ir.types import (
    F16,
    F32,
    F64,
    FloatType,
    FunctionType,
    I1,
    I32,
    I64,
    INDEX,
    IndexType,
    IntegerType,
    TensorType,
    Type,
)
from .errors import TraceError

__all__ = [
    "Tensor",
    "TracedFunction",
    "TracedValue",
    "jit",
]


# ---------------------------------------------------------------------------
# Shape/dtype annotations
# ---------------------------------------------------------------------------


class _TensorMeta(type):
    def __getitem__(cls, item) -> TensorType:
        dims = item if isinstance(item, tuple) else (item,)
        element: Type = F32
        if dims and isinstance(dims[-1], Type):
            element = dims[-1]
            dims = dims[:-1]
        shape = []
        for dim in dims:
            if not isinstance(dim, int) or isinstance(dim, bool) or dim < 1:
                raise TraceError(
                    f"Tensor dimensions must be positive ints, got {dim!r}"
                )
            shape.append(dim)
        return TensorType(tuple(shape), element)


class Tensor(metaclass=_TensorMeta):
    """Annotation sugar: ``Tensor[4, 8]`` is ``tensor<4x8xf32>``;
    an optional trailing element type (``Tensor[4, 8, F64]``) overrides
    the default ``f32``."""


def _resolve_annotation(annotation, fn: Callable) -> Type:
    if isinstance(annotation, str):
        env = dict(getattr(fn, "__globals__", {}))
        closure = getattr(fn, "__closure__", None) or ()
        freevars = getattr(fn, "__code__", None).co_freevars if closure \
            else ()
        for var, cell in zip(freevars, closure):
            try:
                env[var] = cell.cell_contents
            except ValueError:  # pragma: no cover - empty cell
                pass
        for name, value in (("Tensor", Tensor), ("F16", F16), ("F32", F32),
                            ("F64", F64), ("I1", I1), ("I32", I32),
                            ("I64", I64), ("INDEX", INDEX)):
            env.setdefault(name, value)
        try:
            annotation = eval(annotation, env)  # noqa: S307 - authoring tool
        except Exception as error:
            raise TraceError(
                f"cannot resolve annotation {annotation!r}: {error}"
            ) from None
    if annotation is Tensor:
        raise TraceError("bare 'Tensor' annotation needs a shape, e.g. "
                         "Tensor[32, 32]")
    if not isinstance(annotation, Type):
        raise TraceError(
            f"annotation {annotation!r} is not a repro.ir type; use "
            "Tensor[...], F32/F64, I32/I64, or INDEX"
        )
    return annotation


# ---------------------------------------------------------------------------
# Trace context
# ---------------------------------------------------------------------------


class _TraceContext:
    """The builder stack for one in-flight trace.

    The innermost builder is where new ops land; entering an
    ``scf.for`` body pushes a builder, leaving it pops. The class-level
    ``current`` slot makes the active trace visible to operand-less
    helpers such as :func:`repro.frontend.ops.const`.
    """

    current: Optional["_TraceContext"] = None

    def __init__(self, root: Builder):
        self._builders: List[Builder] = [root]

    @property
    def builder(self) -> Builder:
        return self._builders[-1]

    def push(self, builder: Builder) -> None:
        self._builders.append(builder)

    def pop(self) -> None:
        self._builders.pop()

    def require_visible(self, value: Value, what: str = "value") -> None:
        """Reject uses of values defined in regions already exited."""
        defining_op = value.defining_op()
        defined_in = defining_op.parent if defining_op is not None \
            else value.owner
        block = self.builder.ip.block
        while block is not None:
            if block is defined_in:
                return
            parent_op = block.parent.parent if block.parent else None
            block = parent_op.parent if parent_op is not None else None
        raise TraceError(
            f"{what} was defined inside a loop body and cannot be used "
            "after the loop ends; keep loop-local values loop-local"
        )


def current_context(what: str = "this operation") -> _TraceContext:
    ctx = _TraceContext.current
    if ctx is None:
        raise TraceError(
            f"{what} is only usable inside a function being traced by "
            "@frontend.jit"
        )
    return ctx


# ---------------------------------------------------------------------------
# Traced values
# ---------------------------------------------------------------------------

_INT_BINARY = {
    "add": arith.addi, "sub": arith.subi, "mul": arith.muli,
    "floordiv": arith.divsi, "mod": arith.remsi,
}
_FLOAT_BINARY = {
    "add": arith.addf, "sub": arith.subf, "mul": arith.mulf,
    "truediv": arith.divf,
}
_TENSOR_BINARY = {"add": "add", "sub": "sub", "mul": "mul"}

_INT_PREDICATES = {"lt": "slt", "le": "sle", "gt": "sgt", "ge": "sge",
                   "eq": "eq", "ne": "ne"}
_FLOAT_PREDICATES = {"lt": "olt", "le": "ole", "gt": "ogt", "ge": "oge",
                     "eq": "oeq", "ne": "one"}


def _is_int_like(type: Type) -> bool:
    return isinstance(type, (IntegerType, IndexType))


class TracedValue:
    """Proxy for one SSA value inside an active trace.

    Python operators on proxies emit IR: ``+``/``-``/``*`` dispatch to
    ``arith`` for scalars and elementwise ``tosa`` for tensors, ``@``
    is ``tosa.matmul``, comparisons emit ``arith.cmpi``/``cmpf``.
    """

    __slots__ = ("ctx", "value")

    def __init__(self, ctx: _TraceContext, value: Value):
        self.ctx = ctx
        self.value = value

    @property
    def type(self) -> Type:
        return self.value.type

    @property
    def shape(self):
        if isinstance(self.type, TensorType):
            return self.type.shape
        raise TraceError(f"value of type {self.type} has no shape")

    def __repr__(self) -> str:
        return f"<traced {self.type}>"

    # -- staging guards ----------------------------------------------------

    def __bool__(self) -> bool:
        raise TraceError(
            "traced values have no Python truth value: data-dependent "
            "control flow (if/while on traced values) cannot be staged"
        )

    def __int__(self) -> int:
        raise TraceError("traced values cannot be converted to Python int")

    __index__ = __int__

    def __float__(self) -> float:
        raise TraceError("traced values cannot be converted to Python float")

    def __iter__(self):
        raise TraceError("traced values are not iterable")

    # -- arithmetic --------------------------------------------------------

    def _coerce(self, other, what: str) -> "TracedValue":
        if isinstance(other, TracedValue):
            return other
        if isinstance(other, bool) or not isinstance(other, (int, float)):
            raise TraceError(
                f"cannot mix a traced value with {other!r} in {what}"
            )
        if isinstance(self.type, TensorType):
            raise TraceError(
                f"tensor {what} needs a tensor operand; splat a constant "
                "with frontend.const(...) first"
            )
        value = arith.constant(self.ctx.builder, other, self.type)
        return TracedValue(self.ctx, value)

    def _binary(self, kind: str, other, reverse: bool) -> "TracedValue":
        other = self._coerce(other, f"'{kind}'")
        lhs, rhs = (other, self) if reverse else (self, other)
        self.ctx.require_visible(lhs.value, "left operand")
        self.ctx.require_visible(rhs.value, "right operand")
        builder = self.ctx.builder
        if isinstance(lhs.type, TensorType) or isinstance(rhs.type, TensorType):
            from ..dialects import tosa
            if not (isinstance(lhs.type, TensorType)
                    and isinstance(rhs.type, TensorType)):
                raise TraceError(
                    f"cannot apply '{kind}' between {lhs.type} and {rhs.type}"
                )
            name = _TENSOR_BINARY.get(kind)
            if name is None:
                raise TraceError(f"'{kind}' is not an elementwise tensor op")
            result_type = (lhs.type if lhs.type.rank >= rhs.type.rank
                           else rhs.type)
            return TracedValue(
                self.ctx,
                tosa.op(builder, name, [lhs.value, rhs.value], result_type),
            )
        if lhs.type != rhs.type:
            raise TraceError(
                f"operand type mismatch in '{kind}': {lhs.type} vs {rhs.type}"
            )
        table = (_FLOAT_BINARY if isinstance(lhs.type, FloatType)
                 else _INT_BINARY if _is_int_like(lhs.type) else None)
        if table is None or kind not in table:
            raise TraceError(f"'{kind}' is not supported on {lhs.type}")
        return TracedValue(self.ctx, table[kind](builder, lhs.value, rhs.value))

    def __add__(self, other):
        return self._binary("add", other, False)

    def __radd__(self, other):
        return self._binary("add", other, True)

    def __sub__(self, other):
        return self._binary("sub", other, False)

    def __rsub__(self, other):
        return self._binary("sub", other, True)

    def __mul__(self, other):
        return self._binary("mul", other, False)

    def __rmul__(self, other):
        return self._binary("mul", other, True)

    def __truediv__(self, other):
        return self._binary("truediv", other, False)

    def __rtruediv__(self, other):
        return self._binary("truediv", other, True)

    def __floordiv__(self, other):
        return self._binary("floordiv", other, False)

    def __rfloordiv__(self, other):
        return self._binary("floordiv", other, True)

    def __mod__(self, other):
        return self._binary("mod", other, False)

    def __rmod__(self, other):
        return self._binary("mod", other, True)

    def __neg__(self):
        if isinstance(self.type, TensorType):
            from . import ops
            return ops.negate(self)
        return self._binary("sub", 0 if _is_int_like(self.type) else 0.0,
                            True)

    def __matmul__(self, other):
        from . import ops
        return ops.matmul(self, other)

    # -- comparisons -------------------------------------------------------

    def _compare(self, kind: str, other) -> "TracedValue":
        other = self._coerce(other, f"'{kind}' comparison")
        self.ctx.require_visible(self.value, "left operand")
        self.ctx.require_visible(other.value, "right operand")
        builder = self.ctx.builder
        if isinstance(self.type, TensorType):
            raise TraceError("tensor comparisons are not supported")
        if self.type != other.type:
            raise TraceError(
                f"comparison type mismatch: {self.type} vs {other.type}"
            )
        if isinstance(self.type, FloatType):
            result = builder.create(
                "arith.cmpf",
                operands=[self.value, other.value],
                result_types=[I1],
                attributes={"predicate": _FLOAT_PREDICATES[kind]},
            ).result
        else:
            result = arith.cmpi(builder, _INT_PREDICATES[kind],
                                self.value, other.value)
        return TracedValue(self.ctx, result)

    def __lt__(self, other):
        return self._compare("lt", other)

    def __le__(self, other):
        return self._compare("le", other)

    def __gt__(self, other):
        return self._compare("gt", other)

    def __ge__(self, other):
        return self._compare("ge", other)

    # NB: __eq__/__ne__ keep Python identity semantics so proxies stay
    # usable in dicts/sets; use frontend.ops.equals for an IR compare.


# ---------------------------------------------------------------------------
# range -> scf.for
# ---------------------------------------------------------------------------


def _as_index(ctx: _TraceContext, bound, what: str) -> Value:
    if isinstance(bound, TracedValue):
        ctx.require_visible(bound.value, what)
        if isinstance(bound.type, IndexType):
            return bound.value
        if isinstance(bound.type, IntegerType):
            return arith.index_cast(ctx.builder, bound.value, INDEX)
        raise TraceError(f"range {what} must be an integer, got {bound.type}")
    if isinstance(bound, bool) or not isinstance(bound, int):
        raise TraceError(f"range {what} must be an int, got {bound!r}")
    return arith.index_constant(ctx.builder, bound)


class _TracedRange:
    """The ``range`` replacement installed while tracing.

    Iterating emits an ``scf.for`` whose body is traced by running the
    Python loop body exactly once against the induction-variable proxy.
    """

    def __init__(self, ctx: _TraceContext, *args):
        if not 1 <= len(args) <= 3:
            raise TraceError(
                f"range expects 1..3 arguments, got {len(args)}"
            )
        self.ctx = ctx
        if len(args) == 1:
            self.start, self.stop, self.step = 0, args[0], 1
        elif len(args) == 2:
            (self.start, self.stop), self.step = args, 1
        else:
            self.start, self.stop, self.step = args

    def __iter__(self):
        ctx = self.ctx
        lower = _as_index(ctx, self.start, "start")
        upper = _as_index(ctx, self.stop, "stop")
        step = _as_index(ctx, self.step, "step")
        loop = scf.for_(ctx.builder, lower, upper, step)
        body = Builder.at_end(loop.body)
        ctx.push(body)
        try:
            yield TracedValue(ctx, loop.induction_var)
        finally:
            scf.yield_(body)
            ctx.pop()


# ---------------------------------------------------------------------------
# The jit decorator
# ---------------------------------------------------------------------------


def _retarget_range(fn: Callable, ctx: _TraceContext) -> Callable:
    """Rebuild ``fn`` with a globals dict whose ``range`` stages loops."""

    def traced_range(*args):
        return _TracedRange(ctx, *args)

    namespace = dict(fn.__globals__)
    namespace["range"] = traced_range
    rebuilt = _pytypes.FunctionType(
        fn.__code__, namespace, fn.__name__, fn.__defaults__, fn.__closure__
    )
    rebuilt.__kwdefaults__ = getattr(fn, "__kwdefaults__", None)
    return rebuilt


def _coerce_results(ctx: _TraceContext, returned) -> List[Value]:
    if returned is None:
        return []
    raw = list(returned) if isinstance(returned, (tuple, list)) else [returned]
    values = []
    for item in raw:
        if not isinstance(item, TracedValue):
            raise TraceError(
                f"traced functions must return traced values (or None), "
                f"got {item!r}"
            )
        ctx.require_visible(item.value, "returned value")
        values.append(item.value)
    return values


class TracedFunction:
    """A staged payload function produced by :func:`jit`.

    ``.module`` / ``.mlir`` / ``.digest`` expose the traced module (a
    fresh trace is cached on first access); :meth:`trace` always runs a
    fresh trace.
    """

    def __init__(self, fn: Callable, name: Optional[str] = None,
                 verify: bool = True, roundtrip: bool = True):
        self.fn = fn
        self.name = name or fn.__name__
        self.verify = verify
        self.roundtrip = roundtrip
        self.__doc__ = fn.__doc__
        self.__name__ = self.name
        self._module: Optional[Operation] = None

    def __repr__(self) -> str:
        return f"<traced function {self.name!r}>"

    def __call__(self, *args, **kwargs):
        if args or kwargs:
            raise TraceError(
                f"{self.name} is staged: it takes no runtime arguments; "
                "use .module / .mlir to get its IR"
            )
        return self.module

    # -- products ----------------------------------------------------------

    @property
    def module(self) -> Operation:
        if self._module is None:
            self._module = self.trace()
        return self._module

    @property
    def mlir(self) -> str:
        return print_op(self.module)

    @property
    def digest(self) -> str:
        return op_digest(self.module)

    # -- tracing -----------------------------------------------------------

    def _signature_types(self) -> List[Type]:
        signature = inspect.signature(self.fn)
        arg_types = []
        for parameter in signature.parameters.values():
            if parameter.kind not in (
                inspect.Parameter.POSITIONAL_ONLY,
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
            ):
                raise TraceError(
                    f"parameter {parameter.name!r}: only plain positional "
                    "parameters can be traced"
                )
            if parameter.annotation is inspect.Parameter.empty:
                raise TraceError(
                    f"parameter {parameter.name!r} needs a type annotation "
                    "(Tensor[...], F32, I64, INDEX, ...)"
                )
            arg_types.append(_resolve_annotation(parameter.annotation,
                                                 self.fn))
        return arg_types

    def trace(self) -> Operation:
        """Run the function symbolically and return a fresh module."""
        arg_types = self._signature_types()
        module = builtin.module()
        function = func.func(self.name, arg_types, [])
        module.body.append(function)
        root = Builder.at_end(function.body)
        ctx = _TraceContext(root)
        staged = _retarget_range(self.fn, ctx)
        proxies = [TracedValue(ctx, arg) for arg in function.body.args]
        previous = _TraceContext.current
        _TraceContext.current = ctx
        try:
            returned = staged(*proxies)
        finally:
            _TraceContext.current = previous
        results = _coerce_results(ctx, returned)
        func.return_(root, results)
        function.set_attr(
            "function_type",
            FunctionType(tuple(arg_types), tuple(v.type for v in results)),
        )
        self._check_return_annotation(results)
        if self.verify:
            module.verify()
        if self.roundtrip:
            _check_roundtrip(module, self.name)
        return module

    def _check_return_annotation(self, results: Sequence[Value]) -> None:
        annotation = inspect.signature(self.fn).return_annotation
        if annotation is inspect.Signature.empty or annotation is None:
            return
        declared = annotation if isinstance(annotation, tuple) \
            else (annotation,)
        declared = tuple(_resolve_annotation(a, self.fn) for a in declared)
        actual = tuple(v.type for v in results)
        if declared != actual:
            raise TraceError(
                f"{self.name} declares result types "
                f"{[str(t) for t in declared]} but returned "
                f"{[str(t) for t in actual]}"
            )


def _check_roundtrip(module: Operation, name: str) -> None:
    text = print_op(module)
    reparsed = parse(text, f"<traced {name}>")
    original = op_digest(module)
    if op_digest(reparsed) != original:
        raise TraceError(
            f"traced module {name!r} is not digest-stable under "
            "print -> parse round-trip; this would corrupt cache keys"
        )


def jit(fn: Optional[Callable] = None, *, name: Optional[str] = None,
        verify: bool = True, roundtrip: bool = True):
    """Stage a restricted Python function into a `repro.ir` module.

    Usable bare (``@jit``) or configured
    (``@jit(name="main", roundtrip=False)``).
    """

    def wrap(f: Callable) -> TracedFunction:
        return TracedFunction(f, name=name, verify=verify,
                              roundtrip=roundtrip)

    return wrap(fn) if fn is not None else wrap
