"""NumPy-ish tensor/scalar ops for traced payload functions.

Each helper takes :class:`~repro.frontend.tracer.TracedValue` proxies,
infers the result type, emits the corresponding ``tosa``/``linalg``/
``tensor``/``arith`` op at the active trace's insertion point, and
returns a new proxy. Used as ``from repro import frontend as fe`` then
``fe.ops.matmul(a, b)`` (also re-exported at package level).
"""

from __future__ import annotations

from typing import Sequence, Union

from ..dialects import arith, linalg, tensor as tensor_dialect, tosa
from ..ir.core import Value
from ..ir.types import F32, FloatType, TensorType, Type
from .errors import TraceError
from .tracer import TracedValue, _TraceContext, current_context

__all__ = [
    "const", "empty", "constant", "matmul", "linalg_matmul", "fill",
    "conv2d", "clamp", "transpose", "reshape", "softmax", "reduce_sum",
    "reduce_max", "reduce_min", "where", "equals",
    "maximum", "minimum",
    "abs", "negate", "exp", "log", "rsqrt", "reciprocal", "sigmoid",
    "tanh", "erf", "floor", "ceil",
]


def _traced(value, what: str) -> TracedValue:
    if not isinstance(value, TracedValue):
        raise TraceError(f"{what} expects a traced value, got {value!r}")
    return value


def _tensor(value, what: str) -> TracedValue:
    value = _traced(value, what)
    if not isinstance(value.type, TensorType):
        raise TraceError(f"{what} expects a tensor, got {value.type}")
    value.ctx.require_visible(value.value, f"{what} operand")
    return value


def _wrap(ctx: _TraceContext, value: Value) -> TracedValue:
    return TracedValue(ctx, value)


# ---------------------------------------------------------------------------
# Materialization
# ---------------------------------------------------------------------------


def const(shape: Sequence[int], element_type: Type = F32) -> TracedValue:
    """A ``tosa.const`` weight/bias tensor of the given shape."""
    ctx = current_context("frontend.const")
    result_type = TensorType(tuple(int(d) for d in shape), element_type)
    return _wrap(ctx, tosa.const(ctx.builder, result_type))


def empty(shape: Sequence[int], element_type: Type = F32) -> TracedValue:
    """An uninitialized ``tensor.empty`` destination tensor."""
    ctx = current_context("frontend.empty")
    result_type = TensorType(tuple(int(d) for d in shape), element_type)
    return _wrap(ctx, tensor_dialect.empty(ctx.builder, result_type))


def constant(value: Union[int, float], type: Type = F32) -> TracedValue:
    """An ``arith.constant`` scalar."""
    ctx = current_context("frontend.constant")
    return _wrap(ctx, arith.constant(ctx.builder, value, type))


# ---------------------------------------------------------------------------
# Compute
# ---------------------------------------------------------------------------


def matmul(lhs, rhs) -> TracedValue:
    """``tosa.matmul``: 2-D ``(m,k)x(k,n)`` or batched 3-D
    ``(b,m,k)x(b,k,n)``."""
    lhs = _tensor(lhs, "matmul")
    rhs = _tensor(rhs, "matmul")
    a, b = lhs.type.shape, rhs.type.shape
    if len(a) != len(b) or len(a) not in (2, 3):
        raise TraceError(
            f"matmul expects two 2-D or two 3-D tensors, got "
            f"{lhs.type} and {rhs.type}"
        )
    batch_ok = len(a) == 2 or a[0] == b[0]
    if a[-1] != b[-2] or not batch_ok:
        raise TraceError(
            f"matmul shape mismatch: {lhs.type} x {rhs.type}"
        )
    shape = a[:-1] + (b[-1],)
    result_type = TensorType(shape, lhs.type.element_type)
    ctx = lhs.ctx
    return _wrap(ctx, tosa.op(ctx.builder, "matmul",
                              [lhs.value, rhs.value], result_type))


def linalg_matmul(lhs, rhs, init) -> TracedValue:
    """``linalg.matmul`` on tensors with an explicit init/destination."""
    lhs = _tensor(lhs, "linalg_matmul")
    rhs = _tensor(rhs, "linalg_matmul")
    init = _tensor(init, "linalg_matmul")
    ctx = lhs.ctx
    op = linalg.matmul(ctx.builder, lhs.value, rhs.value, init.value,
                       result_types=[init.type])
    return _wrap(ctx, op.results[0])


def fill(value, init) -> TracedValue:
    """``linalg.fill``: splat a scalar into a destination tensor."""
    init = _tensor(init, "fill")
    ctx = init.ctx
    if not isinstance(value, TracedValue):
        element = init.type.element_type
        if isinstance(element, FloatType):
            value = constant(float(value), element)
        else:
            value = constant(int(value), element)
    op = linalg.fill(ctx.builder, value.value, init.value,
                     result_types=[init.type])
    return _wrap(ctx, op.results[0])


def conv2d(activations, weights) -> TracedValue:
    """``tosa.conv2d`` in the same-shape NHWC convention of
    :mod:`repro.mlmodels`."""
    activations = _tensor(activations, "conv2d")
    weights = _tensor(weights, "conv2d")
    ctx = activations.ctx
    return _wrap(ctx, tosa.op(ctx.builder, "conv2d",
                              [activations.value, weights.value],
                              activations.type))


def clamp(value, min_fp: float = 0.0, max_fp: float = 6.0) -> TracedValue:
    value = _tensor(value, "clamp")
    ctx = value.ctx
    return _wrap(ctx, tosa.op(ctx.builder, "clamp", [value.value],
                              value.type, min_fp=min_fp, max_fp=max_fp))


# ---------------------------------------------------------------------------
# Shape manipulation
# ---------------------------------------------------------------------------


def transpose(value, perms: Sequence[int]) -> TracedValue:
    value = _tensor(value, "transpose")
    shape = value.type.shape
    if sorted(perms) != list(range(len(shape))):
        raise TraceError(
            f"transpose perms {list(perms)} is not a permutation of "
            f"rank {len(shape)}"
        )
    result_type = TensorType(tuple(shape[p] for p in perms),
                             value.type.element_type)
    ctx = value.ctx
    return _wrap(ctx, tosa.op(ctx.builder, "transpose", [value.value],
                              result_type, perms=list(perms)))


def reshape(value, new_shape: Sequence[int]) -> TracedValue:
    value = _tensor(value, "reshape")
    new_shape = tuple(int(d) for d in new_shape)
    before = value.type.num_elements
    after = 1
    for dim in new_shape:
        after *= dim
    if before != after:
        raise TraceError(
            f"reshape cannot change element count: {value.type} -> "
            f"{list(new_shape)}"
        )
    result_type = TensorType(new_shape, value.type.element_type)
    ctx = value.ctx
    return _wrap(ctx, tosa.op(ctx.builder, "reshape", [value.value],
                              result_type, new_shape=list(new_shape)))


# ---------------------------------------------------------------------------
# Reductions and softmax
# ---------------------------------------------------------------------------


def _reduce(name: str, value, axis: int) -> TracedValue:
    value = _tensor(value, name)
    shape = value.type.shape
    if not 0 <= axis < len(shape):
        raise TraceError(f"{name} axis {axis} out of range for {value.type}")
    reduced = tuple(1 if i == axis else d for i, d in enumerate(shape))
    result_type = TensorType(reduced, value.type.element_type)
    ctx = value.ctx
    return _wrap(ctx, tosa.op(ctx.builder, name, [value.value],
                              result_type, axis=axis))


def reduce_sum(value, axis: int = 0) -> TracedValue:
    return _reduce("reduce_sum", value, axis)


def reduce_max(value, axis: int = 0) -> TracedValue:
    return _reduce("reduce_max", value, axis)


def reduce_min(value, axis: int = 0) -> TracedValue:
    return _reduce("reduce_min", value, axis)


def softmax(value) -> TracedValue:
    value = _tensor(value, "softmax")
    ctx = value.ctx
    return _wrap(ctx, tosa.op(ctx.builder, "softmax", [value.value],
                              value.type))


# ---------------------------------------------------------------------------
# Selection / comparison
# ---------------------------------------------------------------------------


def where(condition, on_true, on_false) -> TracedValue:
    """``arith.select`` on scalars."""
    condition = _traced(condition, "where")
    on_true = _traced(on_true, "where")
    on_false = _traced(on_false, "where")
    ctx = condition.ctx
    for part in (condition, on_true, on_false):
        ctx.require_visible(part.value, "where operand")
    return _wrap(ctx, arith.select(ctx.builder, condition.value,
                                   on_true.value, on_false.value))


def equals(lhs, rhs) -> TracedValue:
    """An explicit IR equality compare (``==`` keeps Python identity)."""
    lhs = _traced(lhs, "equals")
    return lhs._compare("eq", rhs)


# ---------------------------------------------------------------------------
# Elementwise tensor math
# ---------------------------------------------------------------------------


def _binary_tensor(name: str):
    def build(lhs, rhs) -> TracedValue:
        lhs = _tensor(lhs, name)
        rhs = _tensor(rhs, name)
        result_type = (lhs.type if lhs.type.rank >= rhs.type.rank
                       else rhs.type)
        ctx = lhs.ctx
        return _wrap(ctx, tosa.op(ctx.builder, name,
                                  [lhs.value, rhs.value], result_type))

    build.__name__ = name
    build.__doc__ = f"Elementwise ``tosa.{name}``."
    return build


maximum = _binary_tensor("maximum")
minimum = _binary_tensor("minimum")


def _unary_tensor(name: str):
    def build(value) -> TracedValue:
        value = _tensor(value, name)
        ctx = value.ctx
        return _wrap(ctx, tosa.op(ctx.builder, name, [value.value],
                                  value.type))

    build.__name__ = name
    build.__doc__ = f"Elementwise ``tosa.{name}``."
    return build


abs = _unary_tensor("abs")  # noqa: A001 - mirrors numpy namespace
negate = _unary_tensor("negate")
exp = _unary_tensor("exp")
log = _unary_tensor("log")
rsqrt = _unary_tensor("rsqrt")
reciprocal = _unary_tensor("reciprocal")
sigmoid = _unary_tensor("sigmoid")
tanh = _unary_tensor("tanh")
erf = _unary_tensor("erf")
floor = _unary_tensor("floor")
ceil = _unary_tensor("ceil")
