"""Frontend error hierarchy.

The eDSL reports misuse as Python exceptions *at authoring time*:
tracing a payload raises :class:`TraceError` for Python constructs the
restricted subset cannot express, and the schedule builder raises
:class:`ScheduleError` for handle misuse (most importantly
use-after-consume, §3.1) before any IR-level analysis runs.
"""

from __future__ import annotations


class FrontendError(Exception):
    """Base class for all `repro.frontend` errors."""


class TraceError(FrontendError):
    """A traced payload function used Python the tracer cannot stage."""


class ScheduleError(FrontendError):
    """A schedule builder chain misused a transform handle."""


__all__ = ["FrontendError", "TraceError", "ScheduleError"]
