"""Loading frontend-authored payload/schedule modules from ``.py`` files.

``repro-batch`` and ``repro-submit`` accept Python modules wherever
they accept ``.mlir`` files. A payload module provides one of (first
match wins):

* a ``PAYLOAD``/``payload`` attribute — a :class:`TracedFunction`, an
  :class:`~repro.ir.core.Operation`, IR text, or a zero-argument
  callable returning any of those;
* exactly one module-level :class:`TracedFunction`.

A schedule module likewise provides ``SCHEDULE``/``schedule`` or
exactly one module-level :class:`~repro.frontend.schedule.Schedule`.
Either way the result is IR *text* — from there on the service path is
identical to textual submission, including digest-keyed caching.
"""

from __future__ import annotations

import importlib.util
import itertools
import os

from ..ir.core import Operation
from ..ir.printer import print_op
from .errors import FrontendError
from .schedule import Schedule
from .tracer import TracedFunction

__all__ = ["is_python_module", "load_payload_text", "load_schedule_text",
           "read_payload_source", "read_schedule_source"]

_counter = itertools.count()


def is_python_module(path: str) -> bool:
    return path.endswith(".py")


def _import_file(path: str):
    if not os.path.isfile(path):
        raise FileNotFoundError(path)
    name = f"_repro_frontend_module_{next(_counter)}"
    spec = importlib.util.spec_from_file_location(name, path)
    if spec is None or spec.loader is None:
        raise FrontendError(f"cannot import {path!r}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _coerce_text(obj, path: str, role: str) -> str:
    if callable(obj) and not isinstance(obj, (TracedFunction, Schedule)):
        obj = obj()
    if isinstance(obj, TracedFunction):
        return obj.mlir
    if isinstance(obj, Schedule):
        return obj.mlir
    if isinstance(obj, Operation):
        return print_op(obj)
    if isinstance(obj, str):
        return obj
    raise FrontendError(
        f"{path}: {role} must be a traced function, Schedule, Operation, "
        f"or IR text; got {type(obj).__name__}"
    )


def _find(module, path: str, names, instance_type, role: str):
    for name in names:
        if hasattr(module, name):
            return getattr(module, name)
    candidates = [
        value for key, value in vars(module).items()
        if not key.startswith("_") and isinstance(value, instance_type)
    ]
    if len(candidates) == 1:
        return candidates[0]
    if not candidates:
        raise FrontendError(
            f"{path}: no {role} found; define "
            f"'{names[0]}' or exactly one {instance_type.__name__}"
        )
    raise FrontendError(
        f"{path}: ambiguous {role}: found {len(candidates)} candidates; "
        f"name one '{names[0]}'"
    )


def load_payload_text(path: str) -> str:
    """Import a ``.py`` payload module and return its IR text."""
    module = _import_file(path)
    obj = _find(module, path, ("PAYLOAD", "payload"), TracedFunction,
                "payload")
    return _coerce_text(obj, path, "payload")


def load_schedule_text(path: str) -> str:
    """Import a ``.py`` schedule module and return its IR text."""
    module = _import_file(path)
    obj = _find(module, path, ("SCHEDULE", "schedule"), Schedule,
                "schedule")
    return _coerce_text(obj, path, "schedule")


def read_payload_source(path: str) -> str:
    """Payload text from either a ``.py`` module or an IR file."""
    if is_python_module(path):
        return load_payload_text(path)
    with open(path) as handle:
        return handle.read()


def read_schedule_source(path: str) -> str:
    """Schedule text from either a ``.py`` module or an IR file."""
    if is_python_module(path):
        return load_schedule_text(path)
    with open(path) as handle:
        return handle.read()
