"""Pattern rewriting and dialect conversion infrastructure."""

from .pattern import (
    PatternRewriter,
    RewriteListener,
    RewritePattern,
    pattern,
)
from .greedy import (
    FrozenPatternSet,
    GreedyRewriteConfig,
    PatternApplicationError,
    apply_patterns_greedily,
)
from .conversion import (
    ConversionError,
    ConversionTarget,
    TypeConverter,
    apply_conversion,
)

__all__ = [
    "ConversionError",
    "ConversionTarget",
    "FrozenPatternSet",
    "GreedyRewriteConfig",
    "PatternApplicationError",
    "PatternRewriter",
    "RewriteListener",
    "RewritePattern",
    "TypeConverter",
    "apply_conversion",
    "apply_patterns_greedily",
    "pattern",
]
