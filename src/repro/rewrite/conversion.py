"""Dialect conversion: legality-driven lowering with type conversion.

A simplified but behaviourally faithful model of MLIR's dialect
conversion framework:

* a :class:`ConversionTarget` declares which ops/dialects are legal,
  illegal or dynamically legal;
* a :class:`TypeConverter` maps source types to target types;
* :func:`apply_conversion` drives patterns over illegal ops. When a
  replacement value's type differs from the replaced result's type, a
  ``builtin.unrealized_conversion_cast`` is materialized — exactly the
  temporary ops whose failed reconciliation produces the case-study-2
  error message.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set

from ..ir.core import Block, Operation, Value
from ..ir.types import Type
from .pattern import PatternRewriter, RewriteListener, RewritePattern


class ConversionError(Exception):
    """Legalization failure, carrying the offending operation."""

    def __init__(self, message: str, op: Optional[Operation] = None):
        super().__init__(message)
        self.op = op


class TypeConverter:
    """Converts source types to target types via registered callbacks."""

    def __init__(self) -> None:
        self._conversions: List[Callable[[Type], Optional[Type]]] = []

    def add_conversion(self, fn: Callable[[Type], Optional[Type]]) -> None:
        """Register a conversion; the last registered wins (MLIR order)."""
        self._conversions.append(fn)

    def convert_type(self, type: Type) -> Type:
        for fn in reversed(self._conversions):
            converted = fn(type)
            if converted is not None:
                return converted
        return type

    def is_legal_type(self, type: Type) -> bool:
        return self.convert_type(type) == type


class ConversionTarget:
    """Declares op legality for a conversion."""

    def __init__(self) -> None:
        self.legal_dialects: Set[str] = set()
        self.illegal_dialects: Set[str] = set()
        self.legal_ops: Set[str] = set()
        self.illegal_ops: Set[str] = set()
        self.dynamic: Dict[str, Callable[[Operation], bool]] = {}

    # -- declaration ----------------------------------------------------------

    def add_legal_dialect(self, *names: str) -> "ConversionTarget":
        self.legal_dialects.update(names)
        return self

    def add_illegal_dialect(self, *names: str) -> "ConversionTarget":
        self.illegal_dialects.update(names)
        return self

    def add_legal_op(self, *names: str) -> "ConversionTarget":
        self.legal_ops.update(names)
        return self

    def add_illegal_op(self, *names: str) -> "ConversionTarget":
        self.illegal_ops.update(names)
        return self

    def add_dynamically_legal_op(
        self, name: str, predicate: Callable[[Operation], bool]
    ) -> "ConversionTarget":
        self.dynamic[name] = predicate
        return self

    # -- queries ----------------------------------------------------------------

    @staticmethod
    def _dialect_of(op_name: str) -> str:
        return op_name.split(".", 1)[0]

    def legality(self, op: Operation) -> Optional[bool]:
        """True = legal, False = illegal, None = unknown (kept as-is)."""
        if op.name in self.dynamic:
            return self.dynamic[op.name](op)
        if op.name in self.legal_ops:
            return True
        if op.name in self.illegal_ops:
            return False
        dialect = self._dialect_of(op.name)
        if dialect in self.legal_dialects:
            return True
        if dialect in self.illegal_dialects:
            return False
        return None

    def explicitly_illegal(self, op: Operation) -> bool:
        if op.name in self.dynamic:
            return not self.dynamic[op.name](op)
        return (
            op.name in self.illegal_ops
            or self._dialect_of(op.name) in self.illegal_dialects
        )


class ConversionRewriter(PatternRewriter):
    """Pattern rewriter that materializes type-changing replacements."""

    def __init__(self, type_converter: Optional[TypeConverter],
                 listeners: Sequence[RewriteListener] = ()):
        super().__init__(listeners)
        self.type_converter = type_converter

    def materialize_cast(self, value: Value, target_type: Type,
                         before: Operation) -> Value:
        """Insert an unrealized cast of ``value`` to ``target_type``."""
        if value.type == target_type:
            return value
        self.set_insertion_point_before(before)
        cast = self.create(
            "builtin.unrealized_conversion_cast",
            operands=[value],
            result_types=[target_type],
        )
        return cast.result

    def remapped_operands(self, op: Operation) -> List[Value]:
        """Operands of ``op`` cast to their converted types.

        Mirrors the adaptor values a ConversionPattern receives in MLIR.
        """
        if self.type_converter is None:
            return op.operands
        out: List[Value] = []
        for value in op.operands:
            target = self.type_converter.convert_type(value.type)
            out.append(self.materialize_cast(value, target, op))
        return out

    def replace_op(self, op: Operation,
                   new_values: Sequence[Value]) -> None:
        """Replace, inserting casts back to original types when needed."""
        adapted: List[Value] = []
        for old_result, new_value in zip(op.results, new_values):
            if new_value.type != old_result.type and old_result.has_uses():
                # New values are defined before the op being replaced, so a
                # cast right before the op post-dominates its definition.
                self.set_insertion_point_before(op)
                cast = self.create(
                    "builtin.unrealized_conversion_cast",
                    operands=[new_value],
                    result_types=[old_result.type],
                )
                adapted.append(cast.result)
            else:
                adapted.append(new_value)
        super().replace_op(op, adapted)

    def convert_block_signature(self, block: Block) -> None:
        """Convert block argument types in place, casting for old users."""
        if self.type_converter is None:
            return
        for arg in block.args:
            new_type = self.type_converter.convert_type(arg.type)
            if new_type == arg.type:
                continue
            old_type = arg.type
            arg.type = new_type
            parent = block.parent_op
            if parent is not None:
                parent.invalidate_digest()
            if arg.has_uses() and block.ops:
                self.set_insertion_point_to_start(block)
                cast = self.create(
                    "builtin.unrealized_conversion_cast",
                    operands=[arg],
                    result_types=[old_type],
                )
                arg.replace_uses_where(
                    cast.result, lambda use: use.owner is not cast
                )


def apply_conversion(
    root: Operation,
    patterns: Sequence[RewritePattern],
    target: ConversionTarget,
    type_converter: Optional[TypeConverter] = None,
    extra_listeners: Sequence[RewriteListener] = (),
    max_iterations: int = 10,
) -> None:
    """Legalize all ops under ``root`` against ``target``.

    Raises :class:`ConversionError` with MLIR's wording when an
    explicitly illegal operation cannot be legalized.
    """
    by_name: Dict[Optional[str], List[RewritePattern]] = {}
    for pat in patterns:
        by_name.setdefault(pat.root_name, []).append(pat)
    generic = by_name.get(None, [])

    rewriter = ConversionRewriter(type_converter, extra_listeners)

    for _ in range(max_iterations):
        changed = False
        for op in list(root.walk()):
            if op is root or op.parent is None:
                continue
            legality = target.legality(op)
            if legality is not False:
                continue
            candidates = sorted(
                [*by_name.get(op.name, []), *generic],
                key=lambda p: -p.benefit,
            )
            for pat in candidates:
                rewriter.set_insertion_point_before(op)
                if pat.match_and_rewrite(op, rewriter):
                    changed = True
                    break
        if not changed:
            break

    for op in root.walk():
        if op is root or op.parent is None:
            continue
        if target.explicitly_illegal(op):
            raise ConversionError(
                f"failed to legalize operation '{op.name}' that was "
                "explicitly marked illegal",
                op,
            )
