"""The greedy pattern rewrite driver.

Applies a set of patterns to all operations nested under a root until a
fixed point is reached, mirroring MLIR's
``applyPatternsAndFoldGreedily``. Newly created and modified operations
are re-enqueued via the rewriter's listener mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..ir.core import Operation, Pure, Value
from .pattern import PatternRewriter, RewriteListener, RewritePattern


@dataclass
class GreedyRewriteConfig:
    """Bounds for the fixpoint iteration."""

    max_iterations: int = 10
    #: Hard cap on individual rewrites, guarding against ping-ponging
    #: pattern pairs.
    max_rewrites: int = 100_000


class _WorklistListener(RewriteListener):
    """Feeds newly inserted/modified ops back into the driver worklist."""

    def __init__(self) -> None:
        self.pending: List[Operation] = []
        self.erased: set = set()

    def notify_op_inserted(self, op: Operation) -> None:
        self.pending.append(op)

    def notify_op_modified(self, op: Operation) -> None:
        self.pending.append(op)

    def notify_op_erased(self, op: Operation) -> None:
        self.erased.add(id(op))


def apply_patterns_greedily(
    root: Operation,
    patterns: Sequence[RewritePattern],
    config: Optional[GreedyRewriteConfig] = None,
    extra_listeners: Sequence[RewriteListener] = (),
) -> bool:
    """Apply ``patterns`` under ``root`` until fixpoint.

    Returns True when the IR changed. The root op itself is not matched
    (it anchors the traversal), matching MLIR's driver.
    """
    config = config or GreedyRewriteConfig()
    by_name: Dict[Optional[str], List[RewritePattern]] = {}
    for pat in patterns:
        by_name.setdefault(pat.root_name, []).append(pat)
    for bucket in by_name.values():
        bucket.sort(key=lambda p: -p.benefit)
    generic = by_name.get(None, [])

    listener = _WorklistListener()
    rewriter = PatternRewriter([listener, *extra_listeners])

    changed_any = False
    rewrites = 0
    for _ in range(config.max_iterations):
        worklist = [op for op in root.walk() if op is not root]
        listener.pending = []
        changed_this_round = False
        index = 0
        while index < len(worklist):
            op = worklist[index]
            index += 1
            if id(op) in listener.erased or op.parent is None:
                continue
            candidates = by_name.get(op.name, [])
            applicable = sorted(
                [*candidates, *generic], key=lambda p: -p.benefit
            )
            for pat in applicable:
                rewriter.set_insertion_point_before(op)
                if pat.match_and_rewrite(op, rewriter):
                    changed_this_round = True
                    changed_any = True
                    rewrites += 1
                    if rewrites >= config.max_rewrites:
                        raise RuntimeError(
                            "greedy rewrite exceeded max_rewrites; "
                            "likely a ping-ponging pattern pair"
                        )
                    break
            if index >= len(worklist) and listener.pending:
                fresh = [
                    p for p in listener.pending
                    if id(p) not in listener.erased and p.parent is not None
                ]
                listener.pending = []
                worklist.extend(fresh)
        # Like MLIR's applyPatternsAndFoldGreedily: sweep ops left dead
        # by the rewrites before deciding whether a fixpoint is reached.
        if _erase_dead_pure_ops(root, rewriter):
            changed_this_round = True
            changed_any = True
        if not changed_this_round:
            break
    return changed_any


def _erase_dead_pure_ops(root: Operation,
                         rewriter: PatternRewriter) -> bool:
    erased_any = False
    changed = True
    while changed:
        changed = False
        for op in list(root.walk(reverse=True)):
            if (
                op is not root
                and op.parent is not None
                and op.has_trait(Pure)
                and op.results
                and not any(r.has_uses() for r in op.results)
            ):
                rewriter.erase_op(op)
                changed = True
                erased_any = True
    return erased_any
