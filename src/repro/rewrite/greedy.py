"""The greedy pattern rewrite driver.

Applies a set of patterns to all operations nested under a root until a
fixed point is reached, mirroring MLIR's
``applyPatternsAndFoldGreedily``. The driver is worklist-based: a
single initial walk seeds a deduplicating worklist, and rewrites push
only the operations they inserted, modified or exposed — the payload
tree is never re-walked. Trivially dead pure ops are folded away when
they are popped, exactly like MLIR's driver, so erasures cascade along
def-use chains instead of triggering whole-tree sweeps.

Patterns are bucketed by root op name and benefit-sorted **once** via
:class:`FrozenPatternSet`; pass a pre-frozen set when the same patterns
drive many roots (the ``canonicalize`` pass and
``transform.apply_patterns`` do).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Union

from ..ir.core import Operation, Pure
from .pattern import PatternRewriter, RewriteListener, RewritePattern


@dataclass
class GreedyRewriteConfig:
    """Bounds for the fixpoint iteration."""

    #: Retained for API compatibility with the pre-worklist driver; the
    #: worklist driver converges in a single pass by construction.
    max_iterations: int = 10
    #: Hard cap on individual rewrites, guarding against ping-ponging
    #: pattern pairs.
    max_rewrites: int = 100_000
    #: Debugging escape hatch: re-raise pattern exceptions raw instead
    #: of wrapping them in :class:`PatternApplicationError`.
    strict: bool = False


class PatternApplicationError(RuntimeError):
    """A pattern rewrite crashed with an arbitrary Python exception.

    The driver's exception barrier wraps the crash so callers get a
    structured error naming the pattern and the matched operation
    instead of a raw traceback deep inside rewrite code; the transform
    interpreter's own barrier converts it into a *definite* failure
    with a transform-stack backtrace. The original exception is
    chained as ``__cause__`` (and kept in :attr:`cause`).
    """

    def __init__(self, pattern: RewritePattern, op: Operation,
                 cause: BaseException):
        super().__init__(
            f"pattern '{pattern.label}' crashed on '{op.name}' at "
            f"{op.location}: {type(cause).__name__}: {cause}"
        )
        self.pattern = pattern
        self.op = op
        self.cause = cause


class FrozenPatternSet:
    """Patterns bucketed by root op name, benefit-sorted up front.

    Merging the per-name bucket with the generic (``root_name=None``)
    patterns happens once per distinct op name and is cached — the
    driver's per-op lookup is a dict probe, not a sort.
    """

    def __init__(self, patterns: Sequence[RewritePattern]):
        self._specific: Dict[str, List[RewritePattern]] = {}
        self._generic: List[RewritePattern] = []
        for pat in patterns:
            if pat.root_name is None:
                self._generic.append(pat)
            else:
                self._specific.setdefault(pat.root_name, []).append(pat)
        # Stable sorts keep specific patterns ahead of generic ones on
        # benefit ties, matching the previous driver's ordering.
        self._generic.sort(key=lambda p: -p.benefit)
        for bucket in self._specific.values():
            bucket.sort(key=lambda p: -p.benefit)
        self._merged: Dict[str, List[RewritePattern]] = {}

    def for_op_name(self, name: str) -> List[RewritePattern]:
        merged = self._merged.get(name)
        if merged is None:
            specific = self._specific.get(name)
            if not specific:
                merged = self._generic
            else:
                merged = sorted(
                    [*specific, *self._generic], key=lambda p: -p.benefit
                )
            self._merged[name] = merged
        return merged


class _Worklist:
    """LIFO worklist with O(1) dedup.

    Membership is keyed by ``id``; that is safe because the stack holds
    a strong reference to every member, so an id cannot be recycled
    while it is still in the membership set.
    """

    __slots__ = ("_stack", "_members")

    def __init__(self) -> None:
        self._stack: List[Operation] = []
        self._members: Set[int] = set()

    def push(self, op: Operation) -> bool:
        if id(op) in self._members:
            return False
        self._members.add(id(op))
        self._stack.append(op)
        return True

    def pop(self) -> Operation:
        op = self._stack.pop()
        self._members.discard(id(op))
        return op

    def __len__(self) -> int:
        return len(self._stack)

    def __bool__(self) -> bool:
        return bool(self._stack)


class _WorklistListener(RewriteListener):
    """Feeds the driver worklist from the rewriter's event stream."""

    def __init__(self, worklist: _Worklist, profiler=None) -> None:
        self.worklist = worklist
        self.profiler = profiler
        #: Erased ops, held by strong reference: keeping the objects
        #: alive guarantees their ids are never recycled onto fresh
        #: ops, which a bare id() set silently skipped under GC.
        self.erased: Set[Operation] = set()

    def _push(self, op: Operation) -> None:
        if op in self.erased:
            return
        if self.worklist.push(op) and self.profiler is not None:
            self.profiler.record_worklist_push(len(self.worklist))

    def notify_op_inserted(self, op: Operation) -> None:
        # Region-carrying ops may arrive with pre-built bodies whose
        # nested ops never produce their own insertion events.
        for nested in op.walk():
            self._push(nested)

    def notify_op_modified(self, op: Operation) -> None:
        self._push(op)

    def notify_op_replaced(self, op: Operation, new_values) -> None:
        # The users of the old results are about to have their operands
        # repointed — they are modified ops in all but name.
        for result in op.results:
            for user in result.users:
                self._push(user)

    def notify_op_erased(self, op: Operation) -> None:
        self.erased.add(op)
        # Erasing a use may leave the defining ops trivially dead.
        for operand in op.operands:
            defining = operand.defining_op()
            if defining is not None:
                self._push(defining)


def _is_attached(op: Operation, root: Operation) -> bool:
    """True while ``op`` is still in the tree under ``root``."""
    node: Optional[Operation] = op
    while node is not None:
        if node is root:
            return True
        node = node.parent_op
    return False


def _is_trivially_dead(op: Operation) -> bool:
    if Pure not in type(op).TRAITS or not op.results:
        return False
    for result in op.results:
        if result._uses:
            return False
    return True


def apply_patterns_greedily(
    root: Operation,
    patterns: Union[Sequence[RewritePattern], FrozenPatternSet],
    config: Optional[GreedyRewriteConfig] = None,
    extra_listeners: Sequence[RewriteListener] = (),
    profiler=None,
) -> bool:
    """Apply ``patterns`` under ``root`` until fixpoint.

    Returns True when the IR changed. The root op itself is not matched
    (it anchors the traversal), matching MLIR's driver. ``patterns``
    may be a plain sequence or a pre-built :class:`FrozenPatternSet`;
    ``profiler`` (a :class:`repro.profiling.Profiler`) records
    per-pattern timing and worklist traffic when given.
    """
    config = config or GreedyRewriteConfig()
    frozen = (
        patterns if isinstance(patterns, FrozenPatternSet)
        else FrozenPatternSet(patterns)
    )

    worklist = _Worklist()
    listener = _WorklistListener(worklist, profiler)
    rewriter = PatternRewriter([listener, *extra_listeners])
    if profiler is not None:
        profiler.record_driver_run()

    # Single seeding walk, pushed in pre-order: the LIFO pops bottom-up,
    # so uses are visited before their defs and dead chains fold fast.
    for op in root.walk():
        if op is not root:
            worklist.push(op)
    if profiler is not None:
        profiler.record_worklist_seed(len(worklist))

    changed_any = False
    rewrites = 0
    while worklist:
        op = worklist.pop()
        if profiler is not None:
            profiler.record_worklist_pop()
        if op in listener.erased or not _is_attached(op, root):
            continue
        # Fold trivially dead pure ops on pop (MLIR's driver does the
        # same); the erase listener re-enqueues the operand definers.
        if _is_trivially_dead(op):
            rewriter.erase_op(op)
            changed_any = True
            continue
        # One insertion point per op, not per attempt: a pattern whose
        # match fails must not have created ops, so the point only
        # needs repositioning when the popped op changes.
        rewriter.set_insertion_point_before(op)
        for pat in frozen.for_op_name(op.name):
            start = time.perf_counter() if profiler is not None else 0.0
            try:
                matched = pat.match_and_rewrite(op, rewriter)
            except Exception as error:  # the driver's exception barrier
                if config.strict:
                    raise
                # A crashed pattern may have left the IR half-rewritten;
                # continuing to match would be unsound, so surface a
                # structured error naming the culprit instead.
                raise PatternApplicationError(pat, op, error) from error
            if profiler is not None:
                profiler.record_pattern(
                    pat.label, matched, time.perf_counter() - start
                )
            if matched:
                changed_any = True
                rewrites += 1
                if rewrites >= config.max_rewrites:
                    raise RuntimeError(
                        "greedy rewrite exceeded max_rewrites; "
                        "likely a ping-ponging pattern pair"
                    )
                break
    return changed_any


def _erase_dead_pure_ops(
    root: Operation,
    rewriter: PatternRewriter,
    seed: Optional[Sequence[Operation]] = ()
) -> bool:
    """Erase unused pure ops, chasing def-use chains with a worklist.

    One walk seeds the worklist (or pass ``seed`` to limit the sweep to
    known candidates); erasing an op re-enqueues its operand definers,
    so chains of dead ops cost O(erased), not O(tree x chains).
    """
    worklist = _Worklist()
    for op in (seed or root.walk()):
        if op is not root:
            worklist.push(op)
    erased_any = False
    while worklist:
        op = worklist.pop()
        if op.parent is None or not _is_attached(op, root):
            continue
        if op is root or not _is_trivially_dead(op):
            continue
        defs = [
            d for d in (v.defining_op() for v in op.operands)
            if d is not None
        ]
        rewriter.erase_op(op)
        erased_any = True
        for defining in defs:
            worklist.push(defining)
    return erased_any
