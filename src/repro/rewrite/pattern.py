"""Rewrite patterns and the pattern rewriter.

A :class:`RewritePattern` matches a single operation and rewrites it
through a :class:`PatternRewriter`. All IR mutations go through the
rewriter so that listeners observe every replacement/erasure — this is
the event stream the transform-dialect interpreter subscribes to in
order to keep handles valid across pattern application (paper §3.1).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ..ir.builder import Builder
from ..ir.core import Block, Operation, Value


class RewriteListener:
    """Receives notifications about IR mutations performed by a rewriter."""

    def notify_op_inserted(self, op: Operation) -> None:
        """Called after ``op`` is inserted into a block."""

    def notify_op_replaced(self, op: Operation,
                           new_values: Sequence[Value]) -> None:
        """Called when ``op``'s results are about to be replaced."""

    def notify_op_replaced_with_op(self, op: Operation,
                                   new_op: Operation) -> None:
        """Called when ``op`` is replaced by a single new operation.

        Fires in addition to :meth:`notify_op_replaced`; it carries the
        replacement *operation* so zero-result ops remain trackable.
        """

    def notify_op_erased(self, op: Operation) -> None:
        """Called just before ``op`` is erased."""

    def notify_op_modified(self, op: Operation) -> None:
        """Called after an in-place modification of ``op``."""


class PatternRewriter(Builder):
    """A builder that additionally replaces and erases operations.

    Mutations are reported to all attached listeners; the greedy driver
    and the transform interpreter both listen.
    """

    def __init__(self, listeners: Sequence[RewriteListener] = ()):
        super().__init__(None)
        self.listeners: List[RewriteListener] = list(listeners)

    # -- builder overrides ----------------------------------------------------

    def insert(self, op: Operation) -> Operation:
        result = super().insert(op)
        for listener in self.listeners:
            listener.notify_op_inserted(op)
        return result

    # -- mutation API ----------------------------------------------------------

    def erase_op(self, op: Operation) -> None:
        """Erase ``op``; its results must be unused."""
        for listener in self.listeners:
            listener.notify_op_erased(op)
        op.erase()

    def replace_op(self, op: Operation,
                   new_values: Sequence[Value]) -> None:
        """Replace all of ``op``'s results with ``new_values``, erase it."""
        for listener in self.listeners:
            listener.notify_op_replaced(op, new_values)
        op.replace_all_uses_with(list(new_values))
        for listener in self.listeners:
            listener.notify_op_erased(op)
        op.erase()

    def replace_op_with(self, op: Operation, name: str, **kwargs) -> Operation:
        """Create a new op before ``op`` and replace ``op`` with it."""
        self.set_insertion_point_before(op)
        new_op = self.create(name, **kwargs)
        for listener in self.listeners:
            listener.notify_op_replaced_with_op(op, new_op)
        self.replace_op(op, new_op.results)
        return new_op

    def modify_op_in_place(self, op: Operation,
                           mutation: Callable[[], None]) -> None:
        mutation()
        # Arbitrary mutations (direct op.name / attribute-dict writes)
        # bypass the structural-digest hooks in repro.ir.core; this is
        # the rewriter-level catch-all for them.
        op.invalidate_digest()
        for listener in self.listeners:
            listener.notify_op_modified(op)

    def inline_block_before(self, block: Block, anchor: Operation,
                            arg_values: Sequence[Value] = ()) -> None:
        """Move ``block``'s ops before ``anchor``, remapping block args."""
        if len(arg_values) != len(block.args):
            raise ValueError("inline_block_before: argument count mismatch")
        for arg, value in zip(list(block.args), arg_values):
            arg.replace_all_uses_with(value)
        target = anchor.parent
        assert target is not None
        for op in list(block.ops):
            block.remove(op)
            target.insert_before(anchor, op)
            op.parent = target
            for listener in self.listeners:
                listener.notify_op_inserted(op)


class RewritePattern:
    """Base class of rewrite patterns.

    ``root_name`` restricts matching to a specific op name (None matches
    any operation); higher ``benefit`` patterns are tried first.
    """

    #: Op name this pattern anchors on, or None for any op.
    root_name: Optional[str] = None
    #: Relative priority among applicable patterns.
    benefit: int = 1
    #: Human-readable name used in transform scripts and debugging.
    label: str = ""

    def __init__(self) -> None:
        if not self.label:
            self.label = type(self).__name__

    def match_and_rewrite(self, op: Operation,
                          rewriter: PatternRewriter) -> bool:
        """Try to rewrite ``op``; return True when a rewrite happened."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<pattern {self.label}>"


class _FunctionPattern(RewritePattern):
    """Wraps a plain function as a pattern (see :func:`pattern`)."""

    def __init__(self, fn: Callable[[Operation, PatternRewriter], bool],
                 root_name: Optional[str], benefit: int, label: str):
        self.root_name = root_name
        self.benefit = benefit
        self.label = label or fn.__name__
        self._fn = fn
        super().__init__()

    def match_and_rewrite(self, op: Operation,
                          rewriter: PatternRewriter) -> bool:
        return self._fn(op, rewriter)


def pattern(root_name: Optional[str] = None, benefit: int = 1,
            label: str = ""):
    """Decorator turning ``fn(op, rewriter) -> bool`` into a pattern.

    .. code-block:: python

        @pattern("arith.addi")
        def fold_add_zero(op, rewriter):
            ...
    """

    def decorate(fn: Callable[[Operation, PatternRewriter], bool]):
        return _FunctionPattern(fn, root_name, benefit, label)

    return decorate
