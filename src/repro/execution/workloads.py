"""Payload workload builders shared by tests, examples and benchmarks.

These construct the loop nests the paper's case studies operate on:
plain matmul nests (case 4's ResNet-50 layer is a 196x-something
matmul-shaped nest after im2col), batched matmuls (case 5's autotuning
target), and the Fig. 1 uneven-loop function.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..dialects import arith, builtin, func, memref as memref_dialect, scf
from ..ir.builder import Builder
from ..ir.core import Operation, Value
from ..ir.types import F64, memref


def _matmul_body(builder: Builder, a: Value, b: Value, c: Value,
                 m: int, n: int, k: int) -> Operation:
    """Emit the i/j/k matmul nest; returns the outermost loop."""
    zero = arith.index_constant(builder, 0)
    one = arith.index_constant(builder, 1)
    m_bound = arith.index_constant(builder, m)
    n_bound = arith.index_constant(builder, n)
    k_bound = arith.index_constant(builder, k)

    loop_i = scf.for_(builder, zero, m_bound, one)
    builder_i = Builder.at_end(loop_i.body)
    loop_j = scf.for_(builder_i, zero, n_bound, one)
    builder_j = Builder.at_end(loop_j.body)
    loop_k = scf.for_(builder_j, zero, k_bound, one)
    builder_k = Builder.at_end(loop_k.body)

    i = loop_i.induction_var
    j = loop_j.induction_var
    kk = loop_k.induction_var
    a_val = memref_dialect.load(builder_k, a, [i, kk])
    b_val = memref_dialect.load(builder_k, b, [kk, j])
    c_val = memref_dialect.load(builder_k, c, [i, j])
    product = arith.mulf(builder_k, a_val, b_val)
    accumulated = arith.addf(builder_k, c_val, product)
    memref_dialect.store(builder_k, accumulated, c, [i, j])
    scf.yield_(builder_k)
    scf.yield_(Builder.at_end(loop_j.body))
    scf.yield_(Builder.at_end(loop_i.body))
    return loop_i


def build_matmul_module(m: int, n: int, k: int,
                        function_name: str = "matmul") -> Operation:
    """``func @matmul(%A: memref<mxk>, %B: memref<kxn>, %C: memref<mxn>)``.

    The canonical C[i,j] += A[i,k] * B[k,j] loop nest.
    """
    module = builtin.module()
    element = F64
    function = func.func(
        function_name,
        [memref(m, k, element_type=element),
         memref(k, n, element_type=element),
         memref(m, n, element_type=element)],
    )
    module.body.append(function)
    builder = Builder.at_end(function.body)
    a, b, c = function.body.args
    _matmul_body(builder, a, b, c, m, n, k)
    func.return_(builder)
    module.verify()
    return module


def build_batch_matmul_module(batch: int, m: int, n: int, k: int,
                              function_name: str = "batch_matmul"
                              ) -> Operation:
    """A batched matmul: an outer batch loop over 3-d memrefs.

    The case-study-5 workload (Fig. 9-11 tunes its tile sizes).
    """
    module = builtin.module()
    element = F64
    function = func.func(
        function_name,
        [memref(batch, m, k, element_type=element),
         memref(batch, k, n, element_type=element),
         memref(batch, m, n, element_type=element)],
    )
    module.body.append(function)
    builder = Builder.at_end(function.body)
    a, b, c = function.body.args

    zero = arith.index_constant(builder, 0)
    one = arith.index_constant(builder, 1)
    batch_bound = arith.index_constant(builder, batch)
    m_bound = arith.index_constant(builder, m)
    n_bound = arith.index_constant(builder, n)
    k_bound = arith.index_constant(builder, k)

    loop_b = scf.for_(builder, zero, batch_bound, one)
    builder_b = Builder.at_end(loop_b.body)
    loop_i = scf.for_(builder_b, zero, m_bound, one)
    builder_i = Builder.at_end(loop_i.body)
    loop_j = scf.for_(builder_i, zero, n_bound, one)
    builder_j = Builder.at_end(loop_j.body)
    loop_k = scf.for_(builder_j, zero, k_bound, one)
    builder_k = Builder.at_end(loop_k.body)

    bb = loop_b.induction_var
    i = loop_i.induction_var
    j = loop_j.induction_var
    kk = loop_k.induction_var
    a_val = memref_dialect.load(builder_k, a, [bb, i, kk])
    b_val = memref_dialect.load(builder_k, b, [bb, kk, j])
    c_val = memref_dialect.load(builder_k, c, [bb, i, j])
    product = arith.mulf(builder_k, a_val, b_val)
    accumulated = arith.addf(builder_k, c_val, product)
    memref_dialect.store(builder_k, accumulated, c, [bb, i, j])
    scf.yield_(builder_k)
    scf.yield_(Builder.at_end(loop_j.body))
    scf.yield_(Builder.at_end(loop_i.body))
    scf.yield_(Builder.at_end(loop_b.body))
    func.return_(builder)
    module.verify()
    return module


def build_resnet_layer_module(function_name: str = "resnet_layer"
                              ) -> Operation:
    """The case-study-4 loop nest: a ResNet-50 layer after im2col.

    A 1x1 convolution over a 14x14x... activation becomes a matmul with
    M = 196 (14*14 spatial positions, *not* divisible by the tile size
    32 — which is the whole point of the split-then-tile script),
    N = 256 output channels, K = 256 input channels.
    """
    return build_matmul_module(196, 256, 256, function_name)


def build_uneven_loop_module(function_name: str = "myFunc") -> Operation:
    """The Fig. 1 payload: nested loops with hoistable constants.

    ``func @myFunc(%values: memref<4x4096x4096>)`` with a j-loop nesting
    an i-loop of trip 2042 (not divisible by 8), whose body loads
    through loop-invariant constants and calls ``@use``.
    """
    module = builtin.module()
    use = func.func("use", [F64], declaration=True)
    module.body.append(use)
    function = func.func(
        function_name, [memref(4, 4096, 4096, element_type=F64)]
    )
    module.body.append(function)
    builder = Builder.at_end(function.body)
    values = function.body.args[0]

    zero = arith.index_constant(builder, 0)
    one = arith.index_constant(builder, 1)
    j_bound = arith.index_constant(builder, 4096)
    loop_j = scf.for_(builder, zero, j_bound, one)
    builder_j = Builder.at_end(loop_j.body)

    # Loop-invariant constants inside the outer loop (hoisting targets).
    c1 = arith.index_constant(builder_j, 1)
    i_zero = arith.index_constant(builder_j, 0)
    i_bound = arith.index_constant(builder_j, 2042)
    i_step = arith.index_constant(builder_j, 1)
    loop_i = scf.for_(builder_j, i_zero, i_bound, i_step)
    builder_i = Builder.at_end(loop_i.body)
    value = memref_dialect.load(
        builder_i, values,
        [c1, loop_i.induction_var, loop_j.induction_var],
    )
    func.call(builder_i, "use", [value])
    scf.yield_(builder_i)
    scf.yield_(Builder.at_end(loop_j.body))
    func.return_(builder)
    module.verify()
    return module


def reference_matmul(m: int, n: int, k: int,
                     seed: int = 0) -> Tuple[np.ndarray, np.ndarray,
                                             np.ndarray, np.ndarray]:
    """Random inputs plus the numpy-reference product for validation."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))
    c = np.zeros((m, n))
    expected = a @ b
    return a, b, c, expected
