"""An analytic, cache-aware performance model for loop nests.

Substitutes the paper's hardware measurements (case studies 4 and 5):
runtimes are *estimated* from the loop-nest structure with a classic
reuse/footprint cache model, so transformations change estimated
runtime for the same mechanistic reasons they change real runtime:

* **tiling** shrinks the data footprint between temporal reuses,
  turning cache misses into hits;
* **unrolling** amortizes loop overhead;
* **vectorization** (modelled via a ``vector_width`` loop attribute)
  divides arithmetic/contiguous-access cost — but only when the access
  is unit-stride along the vectorized loop;
* **microkernel calls** run at near-peak FLOP throughput.

The model is deliberately simple (strides per loop + footprint
thresholds per cache level) but it is *derived from the IR*, not
hard-coded per benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.core import Block, Operation, Value
from ..ir.types import MemRefType


@dataclass(frozen=True)
class CacheLevel:
    """One level of the cache hierarchy."""

    size_bytes: int
    latency_cycles: float


@dataclass(frozen=True)
class MachineSpec:
    """The modelled machine (loosely a Skylake-SP core at 2 GHz)."""

    l1: CacheLevel = CacheLevel(32 * 1024, 4.0)
    l2: CacheLevel = CacheLevel(1024 * 1024, 14.0)
    memory_latency_cycles: float = 80.0
    line_bytes: int = 64
    element_bytes: int = 8
    clock_hz: float = 2.0e9
    flop_cycles: float = 1.0
    int_op_cycles: float = 0.5
    loop_overhead_cycles: float = 2.0
    loop_setup_cycles: float = 4.0
    call_overhead_cycles: float = 200.0
    #: FLOPs/cycle a hand-tuned microkernel sustains (2 FMA ports x 8 lanes).
    microkernel_flops_per_cycle: float = 24.0
    #: Fraction of the ideal vector speedup compiler-autovectorized loops
    #: reach (reduction carries, prologue/epilogue, alignment).
    vector_efficiency: float = 0.35
    #: Default trip count assumed for loops with unknown bounds.
    default_trip: int = 64


_FLOAT_OPS = {"arith.addf", "arith.subf", "arith.mulf", "arith.divf",
              "arith.maximumf", "arith.minimumf", "vector.fma"}
_INT_OPS = {"arith.addi", "arith.subi", "arith.muli", "arith.divsi",
            "arith.remsi", "arith.cmpi", "arith.select", "arith.andi",
            "arith.ori", "arith.xori", "arith.index_cast", "affine.apply",
            "affine.min", "arith.maxsi", "arith.minsi"}


@dataclass
class _LoopInfo:
    op: Operation
    trip: int
    vector_width: int = 1


class CostModel:
    """Estimates the runtime of payload functions."""

    def __init__(self, machine: Optional[MachineSpec] = None):
        self.machine = machine or MachineSpec()
        self._footprints: Dict[int, float] = {}
        self._site_counts: Dict[int, int] = {}

    # -- public API -----------------------------------------------------------

    def estimate_module(self, module: Operation,
                        function_name: Optional[str] = None) -> float:
        """Estimated seconds for one invocation of the (first) function."""
        for op in module.walk_ops("func.func"):
            if op.regions[0].blocks and (
                function_name is None
                or getattr(op.attr("sym_name"), "value", None)
                == function_name
            ):
                return self.estimate_function(op)
        raise ValueError("no function definition found")

    def estimate_function(self, func_op: Operation) -> float:
        # Count access sites per base buffer: cold misses to the same
        # buffer are shared among sites (the first site's miss is every
        # other site's hit), so each site carries 1/N of the cold lines.
        self._site_counts = {}
        self._footprints = {}
        for access in _collect_accesses(func_op):
            ref, _indices = _access_operands(access)
            if ref is not None:
                self._site_counts[id(ref)] = (
                    self._site_counts.get(id(ref), 0) + 1
                )
        cycles = self._block_cycles(
            func_op.regions[0].entry_block, loop_stack=[]
        )
        return cycles / self.machine.clock_hz

    # -- structure traversal ------------------------------------------------

    def _block_cycles(self, block: Block,
                      loop_stack: List[_LoopInfo]) -> float:
        machine = self.machine
        total = 0.0
        for op in block.ops:
            name = op.name
            if name == "scf.for":
                trip = op.trip_count()  # type: ignore[attr-defined]
                if trip is None:
                    trip = machine.default_trip
                width_attr = op.attr("vector_width")
                width = getattr(width_attr, "value", 1) or 1
                info = _LoopInfo(op, max(trip, 0), int(width))
                body_cycles = self._block_cycles(
                    op.regions[0].entry_block, loop_stack + [info]
                )
                effective = self._effective_width(info.vector_width)
                iterations = max(info.trip / effective, 1.0) \
                    if info.trip else 0.0
                total += machine.loop_setup_cycles + iterations * (
                    body_cycles + machine.loop_overhead_cycles
                )
                continue
            if name == "scf.forall":
                trips = []
                for bound in op.operands:
                    defining = bound.defining_op()
                    trips.append(
                        defining.value  # type: ignore[attr-defined]
                        if defining is not None
                        and defining.name == "arith.constant"
                        else machine.default_trip
                    )
                body_cycles = self._block_cycles(
                    op.regions[0].entry_block,
                    loop_stack
                    + [_LoopInfo(op, t) for t in trips],
                )
                count = 1
                for trip in trips:
                    count *= trip
                total += count * (
                    body_cycles + machine.loop_overhead_cycles
                )
                continue
            if name == "scf.if":
                branch_costs = [
                    self._block_cycles(region.entry_block, loop_stack)
                    for region in op.regions
                    if region.blocks
                ]
                total += 1.0 + (max(branch_costs) if branch_costs else 0.0)
                continue
            if name in ("memref.load", "memref.store", "vector.load",
                        "vector.store"):
                total += self._access_cycles(op, loop_stack)
                continue
            if name == "func.call":
                flops_attr = op.attr("microkernel_flops")
                if flops_attr is not None:
                    total += (
                        machine.call_overhead_cycles
                        + flops_attr.value  # type: ignore[union-attr]
                        / machine.microkernel_flops_per_cycle
                    )
                else:
                    total += machine.call_overhead_cycles
                continue
            if name in _FLOAT_OPS:
                total += machine.flop_cycles
                continue
            if name in _INT_OPS:
                total += machine.int_op_cycles
                continue
            # Constants, yields, casts: free.
        return total

    # -- memory access model ---------------------------------------------------

    def _access_cycles(self, op: Operation,
                       loop_stack: List[_LoopInfo]) -> float:
        machine = self.machine
        ref, indices = _access_operands(op)
        if ref is None or not isinstance(ref.type, MemRefType):
            return machine.l1.latency_cycles
        strides = _strides_per_loop(op, ref, indices, loop_stack)

        total_accesses = 1.0
        for info in loop_stack:
            total_accesses *= max(info.trip, 1)

        lines = self._distinct_lines(strides, loop_stack)
        lines /= max(self._site_counts.get(id(ref), 1), 1)
        l1_misses = self._misses(lines, strides, loop_stack,
                                 machine.l1.size_bytes)
        l2_misses = self._misses(lines, strides, loop_stack,
                                 machine.l2.size_bytes)
        l2_misses = min(l2_misses, l1_misses)
        l1_misses = min(l1_misses, total_accesses)
        l2_misses = min(l2_misses, l1_misses)

        hits = total_accesses - l1_misses
        cycles_total = (
            hits * machine.l1.latency_cycles
            + (l1_misses - l2_misses) * machine.l2.latency_cycles
            + l2_misses * machine.memory_latency_cycles
        )
        per_access = cycles_total / max(total_accesses, 1.0)
        # A vectorized loop processes `effective_width` iterations per
        # dynamic iteration (accounted at the loop level); non-unit-
        # stride accesses inside it need a gather per lane, cancelling
        # that benefit for this access.
        if loop_stack:
            innermost = loop_stack[-1]
            stride = strides.get(id(innermost.op))
            if innermost.vector_width > 1 and stride not in (0, 1):
                per_access *= self._effective_width(
                    innermost.vector_width
                )
        return per_access

    def _effective_width(self, width: int) -> float:
        """Realized vector speedup (reduction carries, epilogues, ...)."""
        if width <= 1:
            return 1.0
        return 1.0 + (width - 1) * self.machine.vector_efficiency

    def _distinct_lines(self, strides: Dict[int, Optional[int]],
                        loop_stack: List[_LoopInfo]) -> float:
        machine = self.machine
        distinct = 1.0
        min_stride: Optional[int] = None
        for info in loop_stack:
            stride = strides.get(id(info.op), 0)
            if stride is None:
                distinct *= max(info.trip, 1)  # unknown: assume distinct
                continue
            if stride == 0:
                continue
            distinct *= max(info.trip, 1)
            if min_stride is None or abs(stride) < min_stride:
                min_stride = abs(stride)
        if min_stride is not None:
            stride_bytes = min_stride * machine.element_bytes
            if stride_bytes < machine.line_bytes:
                distinct *= stride_bytes / machine.line_bytes
        return max(distinct, 1.0)

    def _misses(self, base_lines: float,
                strides: Dict[int, Optional[int]],
                loop_stack: List[_LoopInfo], cache_size: int) -> float:
        """Cold misses, multiplied when temporal reuse exceeds capacity."""
        misses = base_lines
        for depth, info in enumerate(loop_stack):
            stride = strides.get(id(info.op), 0)
            if stride != 0:
                continue
            # The access is invariant across this loop: reuse across its
            # iterations is only realized when everything touched during
            # one iteration fits in the cache.
            footprint = self._iteration_footprint(
                loop_stack, depth, strides_of=None
            )
            if footprint > cache_size:
                misses *= max(info.trip, 1)
        return misses

    def _iteration_footprint(self, loop_stack: List[_LoopInfo],
                             depth: int, strides_of) -> float:
        """Bytes touched during one iteration of ``loop_stack[depth]``.

        Approximated from the accesses cached during analysis of the
        loop's subtree (computed lazily and memoized per loop op).
        """
        info = loop_stack[depth]
        cached = self._footprints.get(id(info.op))
        if cached is not None:
            return cached
        machine = self.machine
        inner_loops = _collect_loops(info.op)
        footprint = 0.0
        for access in _collect_accesses(info.op):
            ref, indices = _access_operands(access)
            if ref is None or not isinstance(ref.type, MemRefType):
                continue
            stack = [
                _LoopInfo(loop, _trip_or_default(loop, machine))
                for loop in inner_loops
                if loop.is_ancestor_of(access)
            ]
            strides = _strides_per_loop(access, ref, indices, stack)
            footprint += (
                self._distinct_lines(strides, stack) * machine.line_bytes
            )
        self._footprints[id(info.op)] = footprint
        return footprint


# ---------------------------------------------------------------------------
# IR analysis helpers
# ---------------------------------------------------------------------------


def _access_operands(op: Operation) -> Tuple[Optional[Value], List[Value]]:
    if op.name in ("memref.load", "vector.load"):
        return op.operand(0), op.operands[1:]
    if op.name == "memref.store":
        return op.operand(1), op.operands[2:]
    if op.name == "vector.store":
        return op.operand(1), op.operands[2:]
    return None, []


def _trip_or_default(loop: Operation, machine: MachineSpec) -> int:
    trip = None
    if loop.name == "scf.for":
        trip = loop.trip_count()  # type: ignore[attr-defined]
    return trip if trip is not None else machine.default_trip


def _collect_loops(root: Operation) -> List[Operation]:
    return [op for op in root.walk()
            if op.name in ("scf.for", "scf.forall")]


def _collect_accesses(root: Operation) -> List[Operation]:
    return [
        op for op in root.walk()
        if op.name in ("memref.load", "memref.store", "vector.load",
                       "vector.store")
    ]


def _iv_of(loop: Operation) -> Optional[Value]:
    if loop.name == "scf.for" and loop.regions[0].blocks:
        return loop.regions[0].entry_block.args[0]
    return None


def _coefficient(value: Value, iv: Value,
                 depth: int = 0) -> Optional[int]:
    """Coefficient of ``iv`` in the (affine-ish) index ``value``.

    Returns 0 when independent, a constant factor when linear, None when
    the dependence is non-affine/unknown.
    """
    if value is iv:
        return 1
    if depth > 12:
        return None
    defining = value.defining_op()
    if defining is None:
        return 0
    name = defining.name
    if name == "arith.constant":
        return 0
    if name in ("arith.addi", "arith.subi"):
        lhs = _coefficient(defining.operand(0), iv, depth + 1)
        rhs = _coefficient(defining.operand(1), iv, depth + 1)
        if lhs is None or rhs is None:
            return None
        return lhs + rhs if name == "arith.addi" else lhs - rhs
    if name == "arith.muli":
        lhs_const = _constant_of(defining.operand(0))
        rhs_const = _constant_of(defining.operand(1))
        lhs = _coefficient(defining.operand(0), iv, depth + 1)
        rhs = _coefficient(defining.operand(1), iv, depth + 1)
        if lhs == 0 and lhs_const is not None and rhs is not None:
            return lhs_const * rhs
        if rhs == 0 and rhs_const is not None and lhs is not None:
            return rhs_const * lhs
        if lhs == 0 and rhs == 0:
            return 0
        return None
    if name in ("arith.index_cast", "arith.extsi", "arith.trunci"):
        return _coefficient(defining.operand(0), iv, depth + 1)
    if name in ("affine.apply", "affine.min"):
        coefficients = [
            _coefficient(operand, iv, depth + 1)
            for operand in defining.operands
        ]
        if any(c is None for c in coefficients):
            return None
        if all(c == 0 for c in coefficients):
            return 0
        return None  # affine but composite: treat as unknown stride
    # Any other producer: independent only if no operand depends on iv.
    for operand in defining.operands:
        inner = _coefficient(operand, iv, depth + 1)
        if inner is None or inner != 0:
            return None
    return 0


def _constant_of(value: Value) -> Optional[int]:
    defining = value.defining_op()
    if defining is not None and defining.name == "arith.constant":
        payload = defining.value  # type: ignore[attr-defined]
        return payload if isinstance(payload, int) else None
    return None


def _strides_per_loop(access: Operation, ref: Value,
                      indices: Sequence[Value],
                      loop_stack: List[_LoopInfo]
                      ) -> Dict[int, Optional[int]]:
    """Element stride of the access w.r.t. each loop in the stack."""
    ref_type = ref.type
    assert isinstance(ref_type, MemRefType)
    memory_strides = ref_type.identity_strides()
    out: Dict[int, Optional[int]] = {}
    for info in loop_stack:
        iv = _iv_of(info.op)
        if iv is None:
            if info.op.name == "scf.forall" and info.op.regions[0].blocks:
                # Conservative: any body argument may index the access.
                out[id(info.op)] = None
                continue
            out[id(info.op)] = 0
            continue
        total: Optional[int] = 0
        for dim, index in enumerate(indices):
            coefficient = _coefficient(index, iv)
            if coefficient is None:
                total = None
                break
            if dim < len(memory_strides):
                total += coefficient * memory_strides[dim]
        if total is not None:
            step = 1
            bounds = None
            if info.op.name == "scf.for":
                bounds = info.op.constant_bounds()  # type: ignore[attr-defined]
            if bounds is not None:
                step = bounds[2]
            total *= step
        out[id(info.op)] = total
    return out
