"""Execution substrate: payload interpreter + performance simulator.

The paper measures on real x86 hardware; this repo substitutes

* a **reference interpreter** (:mod:`repro.execution.interpreter`)
  executing payload IR on numpy buffers — used to validate that every
  loop transformation preserves semantics, and
* an **analytic, cache-aware cost model**
  (:mod:`repro.execution.costmodel`) — used to *estimate* runtimes so
  the performance shapes of case studies 4 and 5 (tiling locality,
  microkernel speedups, autotuning convergence) are reproduced
  mechanistically rather than asserted.
"""

from .interpreter import ExecutionError, PayloadInterpreter, run_function
from .costmodel import CacheLevel, CostModel, MachineSpec
from .workloads import (
    build_batch_matmul_module,
    build_matmul_module,
    build_resnet_layer_module,
    reference_matmul,
)

__all__ = [
    "CacheLevel",
    "CostModel",
    "ExecutionError",
    "MachineSpec",
    "PayloadInterpreter",
    "build_batch_matmul_module",
    "build_matmul_module",
    "build_resnet_layer_module",
    "reference_matmul",
    "run_function",
]
