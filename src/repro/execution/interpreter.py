"""A reference interpreter for payload IR.

Executes ``func``/``scf``/``arith``/``memref``/``cf`` programs on numpy
buffers. Its purpose is *semantic validation*: after a transform script
rewrites a program, running both versions here must produce identical
buffers — the property-test backbone for every loop transformation.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..ir.context import lookup_symbol
from ..ir.core import Block, Operation
from ..ir.types import MemRefType


class ExecutionError(Exception):
    pass


_INT_BINOPS = {
    "arith.addi": lambda a, b: a + b,
    "arith.subi": lambda a, b: a - b,
    "arith.muli": lambda a, b: a * b,
    "arith.divsi": lambda a, b: int(a / b),
    "arith.remsi": lambda a, b: a - int(a / b) * b,
    "arith.andi": lambda a, b: a & b,
    "arith.ori": lambda a, b: a | b,
    "arith.xori": lambda a, b: a ^ b,
    "arith.maxsi": max,
    "arith.minsi": min,
    "arith.shli": lambda a, b: a << b,
    "arith.shrsi": lambda a, b: a >> b,
}

_FLOAT_BINOPS = {
    "arith.addf": lambda a, b: a + b,
    "arith.subf": lambda a, b: a - b,
    "arith.mulf": lambda a, b: a * b,
    "arith.divf": lambda a, b: a / b,
    "arith.maximumf": max,
    "arith.minimumf": min,
}

_CMPI = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "slt": lambda a, b: a < b,
    "sle": lambda a, b: a <= b,
    "sgt": lambda a, b: a > b,
    "sge": lambda a, b: a >= b,
    "ult": lambda a, b: a < b,
    "ule": lambda a, b: a <= b,
    "ugt": lambda a, b: a > b,
    "uge": lambda a, b: a >= b,
}


class _ReturnSignal(Exception):
    def __init__(self, values: List[object]):
        self.values = values


class PayloadInterpreter:
    """Executes functions of a payload module."""

    def __init__(self, module: Operation, max_steps: int = 50_000_000):
        self.module = module
        self.max_steps = max_steps
        self.steps = 0

    # -- public API -----------------------------------------------------------

    def run(self, function_name: str, *args) -> List[object]:
        """Invoke ``function_name`` with numpy arrays / scalars."""
        from ..ir.context import SymbolTable

        func_op = SymbolTable(self.module).lookup(function_name)
        if func_op is None:
            raise ExecutionError(f"no function named {function_name!r}")
        return self._call_function(func_op, list(args))

    # -- execution ----------------------------------------------------------

    def _call_function(self, func_op: Operation,
                       args: List[object]) -> List[object]:
        if func_op.attr("microkernel") is not None or not func_op.regions[0].blocks:
            return self._run_external(func_op, args)
        entry = func_op.regions[0].entry_block
        if len(entry.args) != len(args):
            raise ExecutionError(
                f"function expects {len(entry.args)} args, got {len(args)}"
            )
        env: Dict[int, object] = {
            id(formal): actual for formal, actual in zip(entry.args, args)
        }
        try:
            self._run_cfg(entry, env)
        except _ReturnSignal as signal:
            return signal.values
        return []

    def _run_external(self, func_op: Operation,
                      args: List[object]) -> List[object]:
        """Microkernel declarations execute as numpy matmuls."""
        name = func_op.attr("sym_name")
        if name is not None and "smm" in name.value:  # type: ignore[union-attr]
            a, b, c = args
            c += a @ b
            return []
        raise ExecutionError(
            f"cannot execute declaration {getattr(name, 'value', '?')}"
        )

    def _run_cfg(self, block: Block, env: Dict[int, object]) -> None:
        """Run a CFG region starting at ``block`` until func.return."""
        current: Optional[Block] = block
        incoming: List[object] = []
        while current is not None:
            for formal, actual in zip(current.args, incoming):
                env[id(formal)] = actual
            next_block, incoming = self._run_block_ops(current, env)
            current = next_block

    def _run_block_ops(self, block: Block, env: Dict[int, object]):
        for op in block.ops:
            self.steps += 1
            if self.steps > self.max_steps:
                raise ExecutionError("interpreter step budget exceeded")
            name = op.name
            if name == "func.return":
                raise _ReturnSignal([env[id(v)] for v in op.operands])
            if name == "cf.br":
                return op.successors[0], [env[id(v)] for v in op.operands]
            if name == "cf.cond_br":
                condition = env[id(op.operand(0))]
                if condition:
                    return op.true_dest, [env[id(v)] for v in op.true_args]  # type: ignore[attr-defined]
                return op.false_dest, [env[id(v)] for v in op.false_args]  # type: ignore[attr-defined]
            self._execute_op(op, env)
        return None, []

    def _execute_op(self, op: Operation, env: Dict[int, object]) -> None:
        name = op.name
        if name == "arith.constant":
            env[id(op.results[0])] = op.value  # type: ignore[attr-defined]
            return
        if name in _INT_BINOPS:
            lhs, rhs = (env[id(v)] for v in op.operands)
            env[id(op.results[0])] = _INT_BINOPS[name](lhs, rhs)
            return
        if name in _FLOAT_BINOPS:
            lhs, rhs = (env[id(v)] for v in op.operands)
            env[id(op.results[0])] = _FLOAT_BINOPS[name](lhs, rhs)
            return
        if name == "arith.cmpi":
            lhs, rhs = (env[id(v)] for v in op.operands)
            env[id(op.results[0])] = _CMPI[op.predicate](lhs, rhs)  # type: ignore[attr-defined]
            return
        if name == "arith.select":
            condition, true_value, false_value = (
                env[id(v)] for v in op.operands
            )
            env[id(op.results[0])] = true_value if condition else false_value
            return
        if name in ("arith.index_cast", "arith.sitofp", "arith.extf",
                    "arith.truncf", "arith.extsi", "arith.trunci"):
            env[id(op.results[0])] = env[id(op.operand(0))]
            return
        if name == "memref.alloc" or name == "memref.alloca":
            ref_type = op.results[0].type
            assert isinstance(ref_type, MemRefType)
            env[id(op.results[0])] = np.zeros(
                ref_type.shape, dtype=np.float64
            )
            return
        if name == "memref.dealloc":
            return
        if name == "memref.load":
            array = env[id(op.memref)]  # type: ignore[attr-defined]
            indices = tuple(int(env[id(v)]) for v in op.indices)  # type: ignore[attr-defined]
            env[id(op.results[0])] = array[indices]
            return
        if name == "memref.store":
            array = env[id(op.memref)]  # type: ignore[attr-defined]
            indices = tuple(int(env[id(v)]) for v in op.indices)  # type: ignore[attr-defined]
            array[indices] = env[id(op.value)]  # type: ignore[attr-defined]
            return
        if name == "memref.subview":
            self._execute_subview(op, env)
            return
        if name == "memref.copy":
            source, dest = (env[id(v)] for v in op.operands)
            np.copyto(dest, source)
            return
        if name == "scf.for":
            self._execute_for(op, env)
            return
        if name == "scf.if":
            self._execute_if(op, env)
            return
        if name == "scf.forall":
            self._execute_forall(op, env)
            return
        if name == "scf.yield":
            return  # handled by the structured-op executors
        if name == "func.call":
            callee = lookup_symbol(op, op.callee)  # type: ignore[attr-defined]
            if callee is None:
                raise ExecutionError(f"unresolved callee {op.callee!r}")  # type: ignore[attr-defined]
            results = self._call_function(
                callee, [env[id(v)] for v in op.operands]
            )
            for result, value in zip(op.results, results):
                env[id(result)] = value
            return
        if name == "affine.apply" or name == "affine.min":
            map_ = op.map  # type: ignore[attr-defined]
            operands = [int(env[id(v)]) for v in op.operands]
            dims = operands[: map_.num_dims]
            symbols = operands[map_.num_dims :]
            values = map_.evaluate(dims, symbols)
            env[id(op.results[0])] = (
                min(values) if name == "affine.min" else values[0]
            )
            return
        raise ExecutionError(f"interpreter does not support '{name}'")

    def _execute_subview(self, op: Operation, env: Dict[int, object]) -> None:
        source = env[id(op.source)]  # type: ignore[attr-defined]
        dynamic = [int(env[id(v)]) for v in op.dynamic_operands]  # type: ignore[attr-defined]
        cursor = 0

        def resolve(entries) -> List[int]:
            nonlocal cursor
            out = []
            for entry in entries:
                if entry == -1:
                    out.append(dynamic[cursor])
                    cursor += 1
                else:
                    out.append(entry)
            return out

        offsets = resolve(op.static_offsets)  # type: ignore[attr-defined]
        sizes = resolve(op.static_sizes)  # type: ignore[attr-defined]
        strides = resolve(op.static_strides)  # type: ignore[attr-defined]
        slices = tuple(
            slice(offset, offset + size * stride, stride)
            for offset, size, stride in zip(offsets, sizes, strides)
        )
        env[id(op.results[0])] = source[slices]

    def _execute_for(self, op: Operation, env: Dict[int, object]) -> None:
        lb = int(env[id(op.operand(0))])
        ub = int(env[id(op.operand(1))])
        step = int(env[id(op.operand(2))])
        if step <= 0:
            raise ExecutionError("scf.for requires a positive step")
        carried = [env[id(v)] for v in op.operands[3:]]
        body = op.regions[0].entry_block
        for iv in range(lb, ub, step):
            env[id(body.args[0])] = iv
            for formal, value in zip(body.args[1:], carried):
                env[id(formal)] = value
            for body_op in body.ops:
                if body_op.name == "scf.yield":
                    carried = [env[id(v)] for v in body_op.operands]
                    break
                self._execute_op(body_op, env)
                self.steps += 1
                if self.steps > self.max_steps:
                    raise ExecutionError("interpreter step budget exceeded")
        for result, value in zip(op.results, carried):
            env[id(result)] = value

    def _execute_if(self, op: Operation, env: Dict[int, object]) -> None:
        condition = env[id(op.operand(0))]
        region = op.regions[0] if condition else (
            op.regions[1] if len(op.regions) > 1 else None
        )
        yielded: List[object] = []
        if region is not None and region.blocks:
            for body_op in region.entry_block.ops:
                if body_op.name == "scf.yield":
                    yielded = [env[id(v)] for v in body_op.operands]
                    break
                self._execute_op(body_op, env)
        for result, value in zip(op.results, yielded):
            env[id(result)] = value

    def _execute_forall(self, op: Operation, env: Dict[int, object]) -> None:
        bounds = [int(env[id(v)]) for v in op.operands]
        body = op.regions[0].entry_block
        indices = [0] * len(bounds)

        def recurse(depth: int) -> None:
            if depth == len(bounds):
                for formal, value in zip(body.args, indices):
                    env[id(formal)] = value
                for body_op in body.ops:
                    if body_op.name == "scf.yield":
                        break
                    self._execute_op(body_op, env)
                return
            for position in range(bounds[depth]):
                indices[depth] = position
                recurse(depth + 1)

        recurse(0)


def run_function(module: Operation, name: str, *args) -> List[object]:
    """One-shot convenience wrapper around :class:`PayloadInterpreter`."""
    return PayloadInterpreter(module).run(name, *args)
