"""The func dialect: functions, calls and returns."""

from __future__ import annotations

from typing import Sequence

from ..ir.attributes import StringAttr, SymbolRefAttr, TypeAttr
from ..ir.builder import Builder
from ..ir.core import (
    Block,
    IsTerminator,
    IsolatedFromAbove,
    Operation,
    SymbolTrait,
    Value,
    register_op,
)
from ..ir.types import FunctionType, Type


@register_op
class FuncOp(Operation):
    """A function definition (or declaration when the body is empty)."""

    NAME = "func.func"
    TRAITS = frozenset({SymbolTrait, IsolatedFromAbove})

    @property
    def sym_name(self) -> str:
        attr = self.attr("sym_name")
        assert isinstance(attr, StringAttr)
        return attr.value

    @property
    def function_type(self) -> FunctionType:
        attr = self.attr("function_type")
        assert isinstance(attr, TypeAttr) and isinstance(
            attr.value, FunctionType
        )
        return attr.value

    @property
    def is_declaration(self) -> bool:
        return not self.regions[0].blocks

    @property
    def body(self) -> Block:
        return self.regions[0].entry_block

    def verify_op(self) -> None:
        if self.is_declaration:
            return
        expected = list(self.function_type.inputs)
        actual = [a.type for a in self.body.args]
        if expected != actual:
            raise ValueError(
                f"func.func @{self.sym_name}: entry block args {actual} "
                f"do not match signature {expected}"
            )


@register_op
class ReturnOp(Operation):
    NAME = "func.return"
    TRAITS = frozenset({IsTerminator})


@register_op
class CallOp(Operation):
    NAME = "func.call"

    @property
    def callee(self) -> str:
        attr = self.attr("callee")
        assert isinstance(attr, SymbolRefAttr)
        return attr.name


def func(
    name: str,
    arg_types: Sequence[Type],
    result_types: Sequence[Type] = (),
    declaration: bool = False,
) -> FuncOp:
    """Create a function; a non-declaration gets an entry block."""
    op = Operation.create(
        "func.func",
        regions=1,
        attributes={
            "sym_name": name,
            "function_type": FunctionType(tuple(arg_types),
                                          tuple(result_types)),
        },
    )
    if not declaration:
        op.regions[0].add_block(Block(list(arg_types)))
    return op  # type: ignore[return-value]


def return_(builder: Builder, values: Sequence[Value] = ()) -> Operation:
    return builder.create("func.return", operands=list(values))


def call(
    builder: Builder,
    callee: str,
    args: Sequence[Value] = (),
    result_types: Sequence[Type] = (),
) -> Operation:
    return builder.create(
        "func.call",
        operands=list(args),
        result_types=list(result_types),
        attributes={"callee": SymbolRefAttr(callee)},
    )
