"""The llvm dialect (subset): the final lowering target.

Models enough of MLIR's LLVM dialect for the Table-2 lowering pipeline:
arithmetic, memory access through raw pointers, branches, functions and
the struct-based memref descriptor manipulation ops.
"""

from __future__ import annotations

from typing import Sequence

from ..ir.attributes import SymbolRefAttr
from ..ir.builder import Builder
from ..ir.core import (
    IsTerminator,
    IsolatedFromAbove,
    Operation,
    Pure,
    SymbolTrait,
    Value,
    register_op,
)
from ..ir.types import LLVMPointerType, Type

_PURE = frozenset({Pure})

# Simple pure value ops (binary arithmetic and casts).
_SIMPLE_OPS = (
    "add", "sub", "mul", "sdiv", "udiv", "srem",
    "fadd", "fsub", "fmul", "fdiv",
    "and", "or", "xor", "shl", "lshr", "ashr",
    "icmp", "fcmp", "select",
    "bitcast", "ptrtoint", "inttoptr", "sext", "zext", "trunc",
    "sitofp", "fptosi", "fpext", "fptrunc",
    "insertvalue", "extractvalue", "getelementptr", "undef", "constant",
    "mlir_zero",
)

for _short in _SIMPLE_OPS:
    register_op(
        type(
            f"LLVM_{_short}",
            (Operation,),
            {"NAME": f"llvm.{_short}", "TRAITS": _PURE},
        )
    )

# Memory and control flow ops.
for _short in ("alloca", "load", "store", "call"):
    register_op(
        type(f"LLVM_{_short}", (Operation,), {"NAME": f"llvm.{_short}"})
    )

for _short in ("br", "cond_br", "switch", "unreachable", "return"):
    register_op(
        type(
            f"LLVM_{_short}",
            (Operation,),
            {"NAME": f"llvm.{_short}", "TRAITS": frozenset({IsTerminator})},
        )
    )


@register_op
class LLVMFuncOp(Operation):
    NAME = "llvm.func"
    TRAITS = frozenset({SymbolTrait, IsolatedFromAbove})


def constant(builder: Builder, value: int, type: Type) -> Value:
    return builder.create(
        "llvm.constant", result_types=[type], attributes={"value": value}
    ).result


def load(builder: Builder, pointer: Value, type: Type) -> Value:
    return builder.create(
        "llvm.load", operands=[pointer], result_types=[type]
    ).result


def store(builder: Builder, value: Value, pointer: Value) -> Operation:
    return builder.create("llvm.store", operands=[value, pointer])


def getelementptr(builder: Builder, pointer: Value,
                  indices: Sequence[Value]) -> Value:
    return builder.create(
        "llvm.getelementptr",
        operands=[pointer, *indices],
        result_types=[LLVMPointerType()],
    ).result


def call(builder: Builder, callee: str, args: Sequence[Value],
         result_types: Sequence[Type] = ()) -> Operation:
    return builder.create(
        "llvm.call",
        operands=list(args),
        result_types=list(result_types),
        attributes={"callee": SymbolRefAttr(callee)},
    )
