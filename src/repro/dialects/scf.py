"""The scf dialect: structured control flow (loops and conditionals)."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..ir.builder import Builder
from ..ir.core import (
    Block,
    BlockArgument,
    IsTerminator,
    Operation,
    SingleBlock,
    Value,
    register_op,
)
from ..ir.types import IndexType, Type


@register_op
class YieldOp(Operation):
    NAME = "scf.yield"
    TRAITS = frozenset({IsTerminator})


@register_op
class ForOp(Operation):
    """A counted loop ``scf.for %iv = %lb to %ub step %step iter_args(...)``.

    Operands are ``lb, ub, step`` followed by the initial values of the
    iteration arguments; the body block receives the induction variable
    plus one argument per iter_arg, and results mirror the iter_args.
    """

    NAME = "scf.for"
    TRAITS = frozenset({SingleBlock})

    @property
    def lower_bound(self) -> Value:
        return self.operand(0)

    @property
    def upper_bound(self) -> Value:
        return self.operand(1)

    @property
    def step(self) -> Value:
        return self.operand(2)

    @property
    def init_args(self) -> List[Value]:
        return self.operands[3:]

    @property
    def body(self) -> Block:
        return self.regions[0].entry_block

    @property
    def induction_var(self) -> BlockArgument:
        return self.body.args[0]

    @property
    def iter_args(self) -> List[BlockArgument]:
        return self.body.args[1:]

    def constant_bounds(self) -> Optional[Tuple[int, int, int]]:
        """(lb, ub, step) when all bounds are arith.constant, else None."""
        values = []
        for bound in (self.lower_bound, self.upper_bound, self.step):
            defining = bound.defining_op()
            if defining is None or defining.name != "arith.constant":
                return None
            values.append(defining.value)  # type: ignore[attr-defined]
        return tuple(values)  # type: ignore[return-value]

    def trip_count(self) -> Optional[int]:
        bounds = self.constant_bounds()
        if bounds is None:
            return None
        lb, ub, step = bounds
        if step <= 0:
            return None
        return max(0, -(-(ub - lb) // step))

    def verify_op(self) -> None:
        if self.num_operands < 3:
            raise ValueError("scf.for expects lb, ub, step operands")
        n_iter = self.num_operands - 3
        if len(self.results) != n_iter:
            raise ValueError("scf.for: results must mirror iter_args")
        if not self.regions[0].blocks:
            raise ValueError("scf.for requires a body block")
        if len(self.body.args) != 1 + n_iter:
            raise ValueError(
                "scf.for body must take the induction variable plus one "
                "argument per iter_arg"
            )


@register_op
class IfOp(Operation):
    """A conditional with a then region and an optional else region."""

    NAME = "scf.if"
    TRAITS = frozenset({SingleBlock})

    @property
    def condition(self) -> Value:
        return self.operand(0)

    @property
    def then_block(self) -> Block:
        return self.regions[0].entry_block

    @property
    def else_block(self) -> Optional[Block]:
        if len(self.regions) < 2 or not self.regions[1].blocks:
            return None
        return self.regions[1].entry_block

    def verify_op(self) -> None:
        if self.num_operands != 1:
            raise ValueError("scf.if expects a single i1 condition")


@register_op
class ForallOp(Operation):
    """A parallel loop over a rectangular index domain (normalized form).

    Operands are the upper bounds (one per dimension, lower bound 0 and
    step 1 implied), matching the normalized ``scf.forall`` used by the
    paper's case-study-2 payload.
    """

    NAME = "scf.forall"
    TRAITS = frozenset({SingleBlock})

    @property
    def body(self) -> Block:
        return self.regions[0].entry_block

    @property
    def induction_vars(self) -> List[BlockArgument]:
        return list(self.body.args)

    @property
    def rank(self) -> int:
        return self.num_operands

    def verify_op(self) -> None:
        if not self.regions[0].blocks:
            raise ValueError("scf.forall requires a body block")
        if len(self.body.args) != self.num_operands:
            raise ValueError(
                "scf.forall: one induction variable per upper bound"
            )


@register_op
class WhileOp(Operation):
    """A general while loop with a 'before' (condition) and 'after' region."""

    NAME = "scf.while"


@register_op
class ConditionOp(Operation):
    NAME = "scf.condition"
    TRAITS = frozenset({IsTerminator})


@register_op
class ExecuteRegionOp(Operation):
    """Wraps a region so structured ops can host unstructured control flow."""

    NAME = "scf.execute_region"


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------


def for_(
    builder: Builder,
    lower_bound: Value,
    upper_bound: Value,
    step: Value,
    iter_args: Sequence[Value] = (),
) -> ForOp:
    """Create an ``scf.for`` with an empty body block (iv + iter args)."""
    op = builder.create(
        "scf.for",
        operands=[lower_bound, upper_bound, step, *iter_args],
        result_types=[v.type for v in iter_args],
        regions=1,
    )
    op.regions[0].add_block(
        Block([IndexType(), *(v.type for v in iter_args)])
    )
    return op  # type: ignore[return-value]


def yield_(builder: Builder, values: Sequence[Value] = ()) -> Operation:
    return builder.create("scf.yield", operands=list(values))


def if_(
    builder: Builder,
    condition: Value,
    result_types: Sequence[Type] = (),
    with_else: bool = False,
) -> IfOp:
    op = builder.create(
        "scf.if",
        operands=[condition],
        result_types=list(result_types),
        regions=2,
    )
    op.regions[0].add_block()
    if with_else:
        op.regions[1].add_block()
    return op  # type: ignore[return-value]


def forall(builder: Builder, upper_bounds: Sequence[Value]) -> ForallOp:
    op = builder.create(
        "scf.forall", operands=list(upper_bounds), regions=1
    )
    op.regions[0].add_block(
        Block([IndexType() for _ in upper_bounds])
    )
    return op  # type: ignore[return-value]
