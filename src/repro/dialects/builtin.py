"""The builtin dialect: modules and unrealized conversion casts."""

from __future__ import annotations

from typing import Sequence

from ..ir.builder import Builder
from ..ir.core import (
    Block,
    IsolatedFromAbove,
    NoTerminator,
    Operation,
    Pure,
    SingleBlock,
    SymbolTableTrait,
    Value,
    register_op,
)
from ..ir.types import Type


@register_op
class ModuleOp(Operation):
    """Top-level container holding a symbol table of functions."""

    NAME = "builtin.module"
    TRAITS = frozenset(
        {SymbolTableTrait, NoTerminator, SingleBlock, IsolatedFromAbove}
    )

    @property
    def body(self) -> Block:
        return self.regions[0].entry_block


@register_op
class UnrealizedConversionCastOp(Operation):
    """A temporary cast between types during progressive lowering.

    Introduced by the dialect-conversion driver when an operation's
    result type changes but some users have not been converted yet.
    ``reconcile-unrealized-casts`` removes matching cast pairs; leftover
    casts make legalization fail — the exact failure mode of the broken
    pipeline in case study 2.
    """

    NAME = "builtin.unrealized_conversion_cast"
    TRAITS = frozenset({Pure})


def module(location=None) -> ModuleOp:
    """Create an empty module with one body block."""
    op = Operation.create("builtin.module", regions=1)
    op.regions[0].add_block()
    return op  # type: ignore[return-value]


def unrealized_cast(builder: Builder, operands: Sequence[Value],
                    result_types: Sequence[Type]) -> Operation:
    return builder.create(
        "builtin.unrealized_conversion_cast",
        operands=list(operands),
        result_types=list(result_types),
    )
