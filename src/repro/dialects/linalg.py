"""The linalg dialect (subset): structured operations on tensors/memrefs.

``linalg.generic`` models a perfectly nested loop computation via
indexing maps and iterator types; the named ops (``matmul``, ``conv_2d``
...) are sugar over it. This is the landing dialect of the TOSA pipeline
in Table 1 and the unit of tiling in the structured transforms.
"""

from __future__ import annotations

from typing import List, Sequence

from ..ir.attributes import ArrayAttr, IntegerAttr, unwrap
from ..ir.builder import Builder
from ..ir.core import (
    Block,
    IsTerminator,
    Operation,
    Pure,
    SingleBlock,
    Value,
    register_op,
)
from ..ir.types import ShapedType, Type


@register_op
class GenericOp(Operation):
    """The structured computation workhorse.

    Attributes: ``n_inputs`` (operand segmentation) and
    ``iterator_types`` (array of "parallel"/"reduction" strings).
    """

    NAME = "linalg.generic"
    TRAITS = frozenset({SingleBlock})

    @property
    def n_inputs(self) -> int:
        attr = self.attr("n_inputs")
        return attr.value if isinstance(attr, IntegerAttr) else 0

    @property
    def inputs(self) -> List[Value]:
        return self.operands[: self.n_inputs]

    @property
    def outputs(self) -> List[Value]:
        return self.operands[self.n_inputs :]

    @property
    def iterator_types(self) -> List[str]:
        attr = self.attr("iterator_types")
        if isinstance(attr, ArrayAttr):
            return [unwrap(v) for v in attr.values]
        return []

    @property
    def body(self) -> Block:
        return self.regions[0].entry_block

    def verify_op(self) -> None:
        if not self.regions or not self.regions[0].blocks:
            raise ValueError("linalg.generic requires a body region")
        expected_args = self.num_operands
        if len(self.body.args) != expected_args:
            raise ValueError(
                "linalg.generic body takes one scalar argument per operand"
            )


class _NamedStructuredOp(Operation):
    """Base for named structured ops: inputs then outputs as operands."""

    N_INPUTS = 2

    @property
    def inputs(self) -> List[Value]:
        return self.operands[: self.N_INPUTS]

    @property
    def outputs(self) -> List[Value]:
        return self.operands[self.N_INPUTS :]

    @property
    def body(self) -> Block:
        """The combiner/body region's entry block, when present."""
        return self.regions[0].entry_block


@register_op
class MatmulOp(_NamedStructuredOp):
    NAME = "linalg.matmul"


@register_op
class BatchMatmulOp(_NamedStructuredOp):
    NAME = "linalg.batch_matmul"


@register_op
class Conv2DOp(_NamedStructuredOp):
    NAME = "linalg.conv_2d_nhwc_hwcf"


@register_op
class DepthwiseConv2DOp(_NamedStructuredOp):
    NAME = "linalg.depthwise_conv_2d_nhwc_hwc"


@register_op
class PoolingMaxOp(_NamedStructuredOp):
    NAME = "linalg.pooling_nhwc_max"


@register_op
class PoolingSumOp(_NamedStructuredOp):
    NAME = "linalg.pooling_nhwc_sum"


@register_op
class FillOp(_NamedStructuredOp):
    NAME = "linalg.fill"
    N_INPUTS = 1


@register_op
class TransposeOp(_NamedStructuredOp):
    NAME = "linalg.transpose"
    N_INPUTS = 1


@register_op
class ReduceOp(_NamedStructuredOp):
    NAME = "linalg.reduce"
    N_INPUTS = 1


@register_op
class BroadcastOp(_NamedStructuredOp):
    NAME = "linalg.broadcast"
    N_INPUTS = 1


@register_op
class MapOp(_NamedStructuredOp):
    NAME = "linalg.map"
    N_INPUTS = 1


@register_op
class LinalgYieldOp(Operation):
    NAME = "linalg.yield"
    TRAITS = frozenset({IsTerminator})


@register_op
class IndexOp(Operation):
    NAME = "linalg.index"
    TRAITS = frozenset({Pure})


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------


def generic(
    builder: Builder,
    inputs: Sequence[Value],
    outputs: Sequence[Value],
    iterator_types: Sequence[str],
    result_types: Sequence[Type] = (),
) -> GenericOp:
    """Create a ``linalg.generic`` with an empty body block.

    The body receives one scalar block argument per input/output; the
    caller populates it and ends with ``linalg.yield``.
    """
    op = builder.create(
        "linalg.generic",
        operands=[*inputs, *outputs],
        result_types=list(result_types),
        attributes={
            "n_inputs": len(inputs),
            "iterator_types": list(iterator_types),
        },
        regions=1,
    )
    arg_types: List[Type] = []
    for value in [*inputs, *outputs]:
        value_type = value.type
        arg_types.append(
            value_type.element_type
            if isinstance(value_type, ShapedType)
            else value_type
        )
    op.regions[0].add_block(Block(arg_types))
    return op  # type: ignore[return-value]


def matmul(builder: Builder, lhs: Value, rhs: Value, init: Value,
           result_types: Sequence[Type] = ()) -> Operation:
    return builder.create(
        "linalg.matmul",
        operands=[lhs, rhs, init],
        result_types=list(result_types),
    )


def fill(builder: Builder, value: Value, init: Value,
         result_types: Sequence[Type] = ()) -> Operation:
    return builder.create(
        "linalg.fill",
        operands=[value, init],
        result_types=list(result_types),
    )


def yield_(builder: Builder, values: Sequence[Value] = ()) -> Operation:
    return builder.create("linalg.yield", operands=list(values))
