"""The index dialect (subset): arithmetic on the index type."""

from __future__ import annotations

from ..ir.builder import Builder
from ..ir.core import Operation, Pure, Value, register_op
from ..ir.types import INDEX

_PURE = frozenset({Pure})

for _short in ("add", "sub", "mul", "divs", "rems", "ceildivs", "constant",
               "casts", "castu", "cmp"):
    register_op(
        type(
            f"Index_{_short}",
            (Operation,),
            {"NAME": f"index.{_short}", "TRAITS": _PURE},
        )
    )


def constant(builder: Builder, value: int) -> Value:
    return builder.create(
        "index.constant", result_types=[INDEX], attributes={"value": value}
    ).result


def add(builder: Builder, lhs: Value, rhs: Value) -> Value:
    return builder.create(
        "index.add", operands=[lhs, rhs], result_types=[INDEX]
    ).result


def mul(builder: Builder, lhs: Value, rhs: Value) -> Value:
    return builder.create(
        "index.mul", operands=[lhs, rhs], result_types=[INDEX]
    ).result
