"""The memref dialect: memory allocation, access and strided views."""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..ir.attributes import DenseIntAttr, unwrap
from ..ir.builder import Builder
from ..ir.core import Operation, Pure, Value, register_op
from ..ir.types import DYNAMIC, INDEX, MemRefLayout, MemRefType


@register_op
class AllocOp(Operation):
    NAME = "memref.alloc"

    def verify_op(self) -> None:
        if len(self.results) != 1 or not isinstance(
            self.results[0].type, MemRefType
        ):
            raise ValueError("memref.alloc produces a memref")


@register_op
class AllocaOp(Operation):
    NAME = "memref.alloca"


@register_op
class DeallocOp(Operation):
    NAME = "memref.dealloc"


@register_op
class LoadOp(Operation):
    """``%v = memref.load %ref[%i, %j]``; operands: ref then indices."""

    NAME = "memref.load"

    @property
    def memref(self) -> Value:
        return self.operand(0)

    @property
    def indices(self) -> List[Value]:
        return self.operands[1:]

    def verify_op(self) -> None:
        ref_type = self.memref.type
        if not isinstance(ref_type, MemRefType):
            raise ValueError("memref.load operand must be a memref")
        if len(self.indices) != ref_type.rank:
            raise ValueError(
                f"memref.load: {len(self.indices)} indices for rank-"
                f"{ref_type.rank} memref"
            )


@register_op
class StoreOp(Operation):
    """``memref.store %v, %ref[%i, %j]``; operands: value, ref, indices."""

    NAME = "memref.store"

    @property
    def value(self) -> Value:
        return self.operand(0)

    @property
    def memref(self) -> Value:
        return self.operand(1)

    @property
    def indices(self) -> List[Value]:
        return self.operands[2:]

    def verify_op(self) -> None:
        ref_type = self.memref.type
        if not isinstance(ref_type, MemRefType):
            raise ValueError("memref.store operand #1 must be a memref")
        if len(self.indices) != ref_type.rank:
            raise ValueError("memref.store: index count mismatch")


@register_op
class SubViewOp(Operation):
    """A strided sub-view of a memref (Fig. 3 of the paper).

    Static offsets/sizes/strides live in dense attributes; a ``DYNAMIC``
    entry means the corresponding value is provided as an operand (after
    the source memref, in offset/size/stride order).
    """

    NAME = "memref.subview"
    TRAITS = frozenset({Pure})

    @property
    def source(self) -> Value:
        return self.operand(0)

    @property
    def static_offsets(self) -> Tuple[int, ...]:
        return tuple(unwrap(self.attr("static_offsets")))

    @property
    def static_sizes(self) -> Tuple[int, ...]:
        return tuple(unwrap(self.attr("static_sizes")))

    @property
    def static_strides(self) -> Tuple[int, ...]:
        return tuple(unwrap(self.attr("static_strides")))

    @property
    def dynamic_operands(self) -> List[Value]:
        return self.operands[1:]

    @property
    def has_trivial_metadata(self) -> bool:
        """True when offsets are all-zero and strides all-one and static.

        This is the property the IRDL-constrained ``memref.subview.constr``
        pseudo-op of the paper encodes: after ``expand-strided-metadata``
        every remaining subview must be trivial.
        """
        return (
            not self.dynamic_operands
            and all(offset == 0 for offset in self.static_offsets)
            and all(stride == 1 for stride in self.static_strides)
        )

    def verify_op(self) -> None:
        n_dynamic = sum(
            1
            for group in (self.static_offsets, self.static_sizes,
                          self.static_strides)
            for entry in group
            if entry == DYNAMIC
        )
        if n_dynamic != len(self.dynamic_operands):
            raise ValueError(
                "memref.subview: dynamic operand count does not match "
                "DYNAMIC attribute entries"
            )


@register_op
class ExtractStridedMetadataOp(Operation):
    """Decompose a memref into base buffer + offset + sizes + strides."""

    NAME = "memref.extract_strided_metadata"
    TRAITS = frozenset({Pure})


@register_op
class ReinterpretCastOp(Operation):
    """Reassemble a memref from base + offset/sizes/strides."""

    NAME = "memref.reinterpret_cast"
    TRAITS = frozenset({Pure})


@register_op
class ExtractAlignedPointerAsIndexOp(Operation):
    NAME = "memref.extract_aligned_pointer_as_index"
    TRAITS = frozenset({Pure})


@register_op
class DimOp(Operation):
    NAME = "memref.dim"
    TRAITS = frozenset({Pure})


@register_op
class CastOp(Operation):
    NAME = "memref.cast"
    TRAITS = frozenset({Pure})


@register_op
class CopyOp(Operation):
    NAME = "memref.copy"


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------


def alloc(builder: Builder, type: MemRefType,
          dynamic_sizes: Sequence[Value] = ()) -> Value:
    return builder.create(
        "memref.alloc", operands=list(dynamic_sizes), result_types=[type]
    ).result


def load(builder: Builder, memref: Value,
         indices: Sequence[Value]) -> Value:
    ref_type = memref.type
    assert isinstance(ref_type, MemRefType)
    return builder.create(
        "memref.load",
        operands=[memref, *indices],
        result_types=[ref_type.element_type],
    ).result


def store(builder: Builder, value: Value, memref: Value,
          indices: Sequence[Value]) -> Operation:
    return builder.create(
        "memref.store", operands=[value, memref, *indices]
    )


def subview(
    builder: Builder,
    source: Value,
    offsets: Sequence[object],
    sizes: Sequence[object],
    strides: Sequence[object],
) -> Value:
    """Create a subview; entries may be ints (static) or Values (dynamic)."""
    source_type = source.type
    assert isinstance(source_type, MemRefType)

    def split(entries: Sequence[object]) -> Tuple[List[int], List[Value]]:
        static: List[int] = []
        dynamic: List[Value] = []
        for entry in entries:
            if isinstance(entry, int):
                static.append(entry)
            else:
                static.append(DYNAMIC)
                dynamic.append(entry)  # type: ignore[arg-type]
        return static, dynamic

    static_offsets, dyn_offsets = split(offsets)
    static_sizes, dyn_sizes = split(sizes)
    static_strides, dyn_strides = split(strides)

    result_shape = tuple(static_sizes)
    layout_offset = (
        static_offsets[0] if all(o != DYNAMIC for o in static_offsets) and not any(
            o != 0 for o in static_offsets[1:]
        ) else DYNAMIC
    )
    # A non-identity layout is recorded whenever offsets/strides are not
    # trivially zero/one; the exact strides are dynamic from the type's
    # point of view.
    trivial = (
        all(o == 0 for o in static_offsets)
        and all(s == 1 for s in static_strides)
        and not dyn_offsets
        and not dyn_strides
    )
    layout = None if trivial else MemRefLayout(
        DYNAMIC, tuple(DYNAMIC for _ in static_strides)
    )
    result_type = MemRefType(result_shape, source_type.element_type, layout)
    return builder.create(
        "memref.subview",
        operands=[source, *dyn_offsets, *dyn_sizes, *dyn_strides],
        result_types=[result_type],
        attributes={
            "static_offsets": DenseIntAttr(tuple(static_offsets)),
            "static_sizes": DenseIntAttr(tuple(static_sizes)),
            "static_strides": DenseIntAttr(tuple(static_strides)),
        },
    ).result


def dim(builder: Builder, memref: Value, index: Value) -> Value:
    return builder.create(
        "memref.dim", operands=[memref, index], result_types=[INDEX]
    ).result
