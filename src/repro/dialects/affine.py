"""The affine dialect (subset): affine index computations.

Only the operations relevant to the paper are modelled: ``affine.apply``
(introduced by ``expand-strided-metadata`` — the culprit of the broken
pipeline in case study 2), ``affine.min`` and ``affine.max`` (tiling
bounds), and ``affine.for``.
"""

from __future__ import annotations

from typing import Sequence

from ..ir.affine import AffineMap
from ..ir.attributes import AffineMapAttr
from ..ir.builder import Builder
from ..ir.core import IsTerminator, Operation, Pure, Value, register_op
from ..ir.types import INDEX


class _AffineMapOp(Operation):
    """Shared accessors for ops parameterized by an affine map."""

    TRAITS = frozenset({Pure})

    @property
    def map(self) -> AffineMap:
        attr = self.attr("map")
        assert isinstance(attr, AffineMapAttr)
        return attr.map  # type: ignore[return-value]

    def verify_op(self) -> None:
        attr = self.attr("map")
        if not isinstance(attr, AffineMapAttr):
            raise ValueError(f"{self.name} requires a 'map' attribute")
        map_ = attr.map
        expected = map_.num_dims + map_.num_symbols  # type: ignore[union-attr]
        if self.num_operands != expected:
            raise ValueError(
                f"{self.name}: expected {expected} operands for map {map_}"
            )


@register_op
class ApplyOp(_AffineMapOp):
    """Evaluate a single-result affine map on index operands."""

    NAME = "affine.apply"

    def verify_op(self) -> None:
        super().verify_op()
        if self.map.num_results != 1:
            raise ValueError("affine.apply requires a single-result map")


@register_op
class MinOp(_AffineMapOp):
    """Minimum over the results of an affine map (tile boundary clamping)."""

    NAME = "affine.min"


@register_op
class MaxOp(_AffineMapOp):
    NAME = "affine.max"


@register_op
class AffineForOp(Operation):
    NAME = "affine.for"


@register_op
class AffineYieldOp(Operation):
    NAME = "affine.yield"
    TRAITS = frozenset({IsTerminator})


def apply(builder: Builder, map: AffineMap,
          operands: Sequence[Value]) -> Value:
    return builder.create(
        "affine.apply",
        operands=list(operands),
        result_types=[INDEX],
        attributes={"map": AffineMapAttr(map)},
    ).result


def min_(builder: Builder, map: AffineMap,
         operands: Sequence[Value]) -> Value:
    return builder.create(
        "affine.min",
        operands=list(operands),
        result_types=[INDEX],
        attributes={"map": AffineMapAttr(map)},
    ).result
