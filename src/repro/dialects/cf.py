"""The cf dialect: classical unstructured control flow (branches)."""

from __future__ import annotations

from typing import List, Sequence

from ..ir.attributes import IntegerAttr
from ..ir.builder import Builder
from ..ir.core import Block, IsTerminator, Operation, Value, register_op


@register_op
class BranchOp(Operation):
    """Unconditional branch; operands are the successor block arguments."""

    NAME = "cf.br"
    TRAITS = frozenset({IsTerminator})

    @property
    def dest(self) -> Block:
        return self.successors[0]

    def verify_op(self) -> None:
        if len(self.successors) != 1:
            raise ValueError("cf.br expects one successor")
        if self.num_operands != len(self.dest.args):
            raise ValueError(
                "cf.br operand count does not match successor arguments"
            )


@register_op
class CondBranchOp(Operation):
    """Conditional branch.

    Operands are ``cond`` then true-successor args then false-successor
    args; the split point is recorded in the ``true_arg_count`` attribute
    (mirroring MLIR's variadic operand segmentation).
    """

    NAME = "cf.cond_br"
    TRAITS = frozenset({IsTerminator})

    @property
    def condition(self) -> Value:
        return self.operand(0)

    @property
    def true_dest(self) -> Block:
        return self.successors[0]

    @property
    def false_dest(self) -> Block:
        return self.successors[1]

    @property
    def _true_count(self) -> int:
        attr = self.attr("true_arg_count")
        return attr.value if isinstance(attr, IntegerAttr) else 0

    @property
    def true_args(self) -> List[Value]:
        return self.operands[1 : 1 + self._true_count]

    @property
    def false_args(self) -> List[Value]:
        return self.operands[1 + self._true_count :]

    def verify_op(self) -> None:
        if len(self.successors) != 2:
            raise ValueError("cf.cond_br expects two successors")
        if len(self.true_args) != len(self.true_dest.args):
            raise ValueError("cf.cond_br true-successor argument mismatch")
        if len(self.false_args) != len(self.false_dest.args):
            raise ValueError("cf.cond_br false-successor argument mismatch")


@register_op
class SwitchOp(Operation):
    NAME = "cf.switch"
    TRAITS = frozenset({IsTerminator})


def br(builder: Builder, dest: Block,
       args: Sequence[Value] = ()) -> Operation:
    return builder.create(
        "cf.br", operands=list(args), successors=[dest]
    )


def cond_br(
    builder: Builder,
    condition: Value,
    true_dest: Block,
    false_dest: Block,
    true_args: Sequence[Value] = (),
    false_args: Sequence[Value] = (),
) -> Operation:
    return builder.create(
        "cf.cond_br",
        operands=[condition, *true_args, *false_args],
        successors=[true_dest, false_dest],
        attributes={"true_arg_count": len(true_args)},
    )
