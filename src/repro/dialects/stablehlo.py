"""The StableHLO dialect (subset) used by the case-study-3 pattern hunt.

Models the tensor-level ops that the Enzyme/JAX peephole patterns of the
paper rewrite: elementwise arithmetic, shape manipulation, ``dot_general``
and ``reduce``.
"""

from __future__ import annotations

from typing import Sequence

from ..ir.builder import Builder
from ..ir.core import Block, IsTerminator, Operation, Pure, Value, register_op
from ..ir.types import TensorType, Type

_PURE = frozenset({Pure})

ELEMENTWISE_BINARY = ("add", "subtract", "multiply", "divide", "maximum",
                      "minimum", "power", "atan2")
ELEMENTWISE_UNARY = ("negate", "exponential", "log", "rsqrt", "sqrt",
                     "tanh", "logistic", "abs", "sign", "convert",
                     "floor", "ceil", "cosine", "sine")
SHAPE_OPS = ("transpose", "reshape", "broadcast_in_dim", "slice",
             "concatenate", "reverse", "pad")
OTHER_OPS = ("constant", "dot_general", "select", "compare", "iota",
             "convolution", "dynamic_slice", "gather")

ALL_OPS = ELEMENTWISE_BINARY + ELEMENTWISE_UNARY + SHAPE_OPS + OTHER_OPS

for _short in ALL_OPS:
    register_op(
        type(
            f"Stablehlo_{_short}",
            (Operation,),
            {"NAME": f"stablehlo.{_short}", "TRAITS": _PURE},
        )
    )


@register_op
class ReduceOp(Operation):
    """Reduction over listed dimensions with a combiner region."""

    NAME = "stablehlo.reduce"
    TRAITS = frozenset({Pure})


@register_op
class ReturnOp(Operation):
    NAME = "stablehlo.return"
    TRAITS = frozenset({IsTerminator})


def op(builder: Builder, short_name: str, operands: Sequence[Value],
       result_type: Type, **attrs) -> Value:
    """Generic StableHLO builder: ``stablehlo.op(b, "add", [x, y], t)``."""
    return builder.create(
        f"stablehlo.{short_name}",
        operands=list(operands),
        result_types=[result_type],
        attributes=dict(attrs) if attrs else None,
    ).result


def reduce(builder: Builder, operand: Value, init: Value,
           dimensions: Sequence[int], result_type: Type,
           kind: str = "add") -> Value:
    """Create a ``stablehlo.reduce`` with a canonical combiner region."""
    reduce_op = builder.create(
        "stablehlo.reduce",
        operands=[operand, init],
        result_types=[result_type],
        attributes={"dimensions": list(dimensions), "kind": kind},
        regions=1,
    )
    element_type = result_type.element_type if isinstance(
        result_type, TensorType) else result_type
    body = Block([element_type, element_type])
    reduce_op.regions[0].add_block(body)
    body_builder = Builder.at_end(body)
    combined = body_builder.create(
        f"stablehlo.{kind}",
        operands=list(body.args),
        result_types=[element_type],
    )
    body_builder.create("stablehlo.return", operands=[combined.result])
    return reduce_op.result
