"""The TOSA dialect (subset): Tensor Operator Set Architecture.

The entry dialect of the Table-1 compile-time study: synthetic ML model
graphs (``repro.mlmodels``) are expressed in TOSA and lowered to Linalg
through the pipeline in ``repro.passes.tosa_pipeline``.
"""

from __future__ import annotations

from typing import Sequence

from ..ir.builder import Builder
from ..ir.core import Operation, Pure, Value, register_op
from ..ir.types import TensorType, Type

_PURE = frozenset({Pure})

#: Elementwise binary ops (broadcastable in full TOSA).
BINARY_OPS = ("add", "sub", "mul", "maximum", "minimum", "pow",
              "logical_and", "logical_or")

#: Elementwise unary ops.
UNARY_OPS = ("abs", "negate", "exp", "log", "rsqrt", "reciprocal",
             "sigmoid", "tanh", "clamp", "cast", "rescale", "erf",
             "floor", "ceil")

#: Data movement / shape ops.
SHAPE_OPS = ("reshape", "transpose", "concat", "pad", "slice", "tile",
             "reverse", "gather")

#: Reductions.
REDUCE_OPS = ("reduce_sum", "reduce_max", "reduce_min", "reduce_prod",
              "reduce_all", "reduce_any", "argmax")

#: Compute-heavy ops.
COMPUTE_OPS = ("conv2d", "depthwise_conv2d", "transpose_conv2d", "matmul",
               "fully_connected", "avg_pool2d", "max_pool2d")

#: Miscellaneous.
MISC_OPS = ("const", "table", "select", "equal", "greater",
            "greater_equal", "resize", "softmax")

ALL_OPS = (BINARY_OPS + UNARY_OPS + SHAPE_OPS + REDUCE_OPS + COMPUTE_OPS
           + MISC_OPS)

for _short in ALL_OPS:
    register_op(
        type(
            f"Tosa_{_short}",
            (Operation,),
            {"NAME": f"tosa.{_short}", "TRAITS": _PURE},
        )
    )


def op(builder: Builder, short_name: str, operands: Sequence[Value],
       result_type: Type, **attrs) -> Value:
    """Generic TOSA op builder: ``tosa.op(b, "add", [x, y], t)``."""
    if short_name not in ALL_OPS:
        raise ValueError(f"unknown tosa op: {short_name}")
    return builder.create(
        f"tosa.{short_name}",
        operands=list(operands),
        result_types=[result_type],
        attributes=dict(attrs) if attrs else None,
    ).result


def const(builder: Builder, result_type: TensorType, **attrs) -> Value:
    return builder.create(
        "tosa.const", result_types=[result_type],
        attributes=dict(attrs) if attrs else None,
    ).result
