"""Payload dialects.

Each module registers its operations on import and exposes builder
helpers so client code reads close to MLIR's own builder API:

.. code-block:: python

    from repro.dialects import arith, scf, func

    c0 = arith.constant(builder, 0, INDEX)
    loop = scf.for_(builder, c0, ub, step)

Importing :mod:`repro.dialects` loads every dialect.
"""

from . import (  # noqa: F401  (imported for registration side effects)
    affine,
    arith,
    builtin,
    cf,
    func,
    index,
    linalg,
    llvm,
    memref,
    scf,
    stablehlo,
    tensor,
    tosa,
    vector,
)

__all__ = [
    "affine",
    "arith",
    "builtin",
    "cf",
    "func",
    "index",
    "linalg",
    "llvm",
    "memref",
    "scf",
    "stablehlo",
    "tensor",
    "tosa",
    "vector",
]
