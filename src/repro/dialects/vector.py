"""The vector dialect (subset): SIMD-style operations."""

from __future__ import annotations

from typing import Sequence

from ..ir.builder import Builder
from ..ir.core import Operation, Pure, Value, register_op
from ..ir.types import VectorType

_PURE = frozenset({Pure})

for _short in ("broadcast", "fma", "extract", "insert", "splat",
               "reduction", "transfer_read", "transfer_write", "shuffle"):
    register_op(
        type(
            f"Vector_{_short}",
            (Operation,),
            {"NAME": f"vector.{_short}", "TRAITS": _PURE},
        )
    )

for _short in ("load", "store"):
    register_op(
        type(f"Vector_{_short}", (Operation,), {"NAME": f"vector.{_short}"})
    )


def load(builder: Builder, type: VectorType, base: Value,
         indices: Sequence[Value]) -> Value:
    return builder.create(
        "vector.load", operands=[base, *indices], result_types=[type]
    ).result


def store(builder: Builder, value: Value, base: Value,
          indices: Sequence[Value]) -> Operation:
    return builder.create(
        "vector.store", operands=[value, base, *indices]
    )


def fma(builder: Builder, a: Value, b: Value, c: Value) -> Value:
    return builder.create(
        "vector.fma", operands=[a, b, c], result_types=[a.type]
    ).result
