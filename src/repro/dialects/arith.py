"""The arith dialect: integer/float arithmetic, comparisons and casts."""

from __future__ import annotations

from typing import Optional, Union

from ..ir.attributes import FloatAttr, IntegerAttr, StringAttr, unwrap
from ..ir.builder import Builder
from ..ir.core import Commutative, Operation, Pure, Value, register_op
from ..ir.types import F64, FloatType, I64, IndexType, Type


@register_op
class ConstantOp(Operation):
    """An integer, float or index constant (``value`` attribute)."""

    NAME = "arith.constant"
    TRAITS = frozenset({Pure})

    @property
    def value(self) -> Union[int, float]:
        return unwrap(self.attr("value"))

    def verify_op(self) -> None:
        if "value" not in self.attributes:
            raise ValueError("arith.constant requires a 'value' attribute")
        if len(self.results) != 1:
            raise ValueError("arith.constant produces exactly one result")


class _BinaryOp(Operation):
    """Shared verification for same-type binary arithmetic."""

    def verify_op(self) -> None:
        if self.num_operands != 2:
            raise ValueError(f"{self.name} expects two operands")
        lhs, rhs = self.operands
        if lhs.type != rhs.type:
            raise ValueError(
                f"{self.name}: operand types differ ({lhs.type} vs {rhs.type})"
            )
        if len(self.results) == 1 and self.results[0].type != lhs.type:
            raise ValueError(f"{self.name}: result type mismatch")


_COMMUTATIVE = frozenset({Pure, Commutative})
_PURE = frozenset({Pure})

_BINARY_OPS = {
    "addi": _COMMUTATIVE,
    "subi": _PURE,
    "muli": _COMMUTATIVE,
    "divsi": _PURE,
    "divui": _PURE,
    "remsi": _PURE,
    "remui": _PURE,
    "andi": _COMMUTATIVE,
    "ori": _COMMUTATIVE,
    "xori": _COMMUTATIVE,
    "maxsi": _COMMUTATIVE,
    "minsi": _COMMUTATIVE,
    "shli": _PURE,
    "shrsi": _PURE,
    "addf": _COMMUTATIVE,
    "subf": _PURE,
    "mulf": _COMMUTATIVE,
    "divf": _PURE,
    "maximumf": _COMMUTATIVE,
    "minimumf": _COMMUTATIVE,
}

for _short_name, _traits in _BINARY_OPS.items():
    _cls = type(
        f"Arith_{_short_name}",
        (_BinaryOp,),
        {"NAME": f"arith.{_short_name}", "TRAITS": _traits},
    )
    register_op(_cls)


@register_op
class CmpIOp(Operation):
    """Integer comparison; the predicate is a string attribute."""

    NAME = "arith.cmpi"
    TRAITS = frozenset({Pure})

    PREDICATES = ("eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule",
                  "ugt", "uge")

    @property
    def predicate(self) -> str:
        attr = self.attr("predicate")
        assert isinstance(attr, StringAttr)
        return attr.value

    def verify_op(self) -> None:
        attr = self.attr("predicate")
        if not isinstance(attr, StringAttr) or attr.value not in self.PREDICATES:
            raise ValueError("arith.cmpi: invalid predicate")


@register_op
class CmpFOp(Operation):
    NAME = "arith.cmpf"
    TRAITS = frozenset({Pure})

    PREDICATES = ("oeq", "one", "olt", "ole", "ogt", "oge", "ord", "uno")

    @property
    def predicate(self) -> str:
        attr = self.attr("predicate")
        assert isinstance(attr, StringAttr)
        return attr.value


@register_op
class SelectOp(Operation):
    NAME = "arith.select"
    TRAITS = frozenset({Pure})

    def verify_op(self) -> None:
        if self.num_operands != 3:
            raise ValueError("arith.select expects (cond, true, false)")


class _CastOp(Operation):
    TRAITS = frozenset({Pure})

    def verify_op(self) -> None:
        if self.num_operands != 1 or len(self.results) != 1:
            raise ValueError(f"{self.name} is a unary cast")


for _cast_name in ("index_cast", "sitofp", "fptosi", "extf", "truncf",
                   "extsi", "extui", "trunci", "bitcast"):
    register_op(
        type(
            f"Arith_{_cast_name}",
            (_CastOp,),
            {"NAME": f"arith.{_cast_name}"},
        )
    )


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------


def constant(builder: Builder, value: Union[int, float],
             type: Optional[Type] = None) -> Value:
    """Create an ``arith.constant`` and return its result value."""
    if type is None:
        type = I64 if isinstance(value, int) else F64
    if isinstance(value, float) or isinstance(type, FloatType):
        value_attr = FloatAttr(float(value), type)
    else:
        value_attr = IntegerAttr(int(value), type)
    op = builder.create(
        "arith.constant", result_types=[type], attributes={"value": value_attr}
    )
    return op.result


def index_constant(builder: Builder, value: int) -> Value:
    return constant(builder, value, IndexType())


def _binary(name: str):
    def build(builder: Builder, lhs: Value, rhs: Value) -> Value:
        return builder.create(
            f"arith.{name}", operands=[lhs, rhs], result_types=[lhs.type]
        ).result

    build.__name__ = name
    build.__doc__ = f"Create an ``arith.{name}`` op and return its result."
    return build


addi = _binary("addi")
subi = _binary("subi")
muli = _binary("muli")
divsi = _binary("divsi")
remsi = _binary("remsi")
andi = _binary("andi")
ori = _binary("ori")
xori = _binary("xori")
maxsi = _binary("maxsi")
minsi = _binary("minsi")
addf = _binary("addf")
subf = _binary("subf")
mulf = _binary("mulf")
divf = _binary("divf")
maximumf = _binary("maximumf")
minimumf = _binary("minimumf")


def cmpi(builder: Builder, predicate: str, lhs: Value, rhs: Value) -> Value:
    from ..ir.types import I1

    return builder.create(
        "arith.cmpi",
        operands=[lhs, rhs],
        result_types=[I1],
        attributes={"predicate": predicate},
    ).result


def select(builder: Builder, cond: Value, true_value: Value,
           false_value: Value) -> Value:
    return builder.create(
        "arith.select",
        operands=[cond, true_value, false_value],
        result_types=[true_value.type],
    ).result


def index_cast(builder: Builder, value: Value, type: Type) -> Value:
    return builder.create(
        "arith.index_cast", operands=[value], result_types=[type]
    ).result
