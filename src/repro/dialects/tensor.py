"""The tensor dialect (subset): value-semantics tensor manipulation."""

from __future__ import annotations


from ..ir.builder import Builder
from ..ir.core import IsTerminator, Operation, Pure, Value, register_op
from ..ir.types import TensorType, Type

_PURE = frozenset({Pure})

for _short in ("empty", "extract", "insert", "extract_slice", "insert_slice",
               "collapse_shape", "expand_shape", "cast", "dim", "splat",
               "from_elements", "concat", "reshape"):
    register_op(
        type(
            f"Tensor_{_short}",
            (Operation,),
            {"NAME": f"tensor.{_short}", "TRAITS": _PURE},
        )
    )


@register_op
class PadOp(Operation):
    """Pads a tensor; carries a region producing the padding value."""

    NAME = "tensor.pad"
    TRAITS = frozenset({Pure})


@register_op
class TensorYieldOp(Operation):
    NAME = "tensor.yield"
    TRAITS = frozenset({IsTerminator})


def empty(builder: Builder, type: TensorType) -> Value:
    return builder.create("tensor.empty", result_types=[type]).result


def cast(builder: Builder, source: Value, type: Type) -> Value:
    return builder.create(
        "tensor.cast", operands=[source], result_types=[type]
    ).result
