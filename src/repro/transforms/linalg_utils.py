"""Structured-op (linalg) transformation utilities."""

from __future__ import annotations

from typing import List

from ..ir.builder import Builder
from ..ir.core import Block, Operation, Value
from ..ir.types import MemRefType, ShapedType
from .loop import LoopTransformError


def generalize_named_op(op: Operation) -> Operation:
    """Rewrite a named structured op into ``linalg.generic``.

    The body mirrors the named op's contraction/elementwise semantics.
    """

    body_ops = {
        "linalg.matmul": ("arith.mulf", "arith.addf"),
        "linalg.batch_matmul": ("arith.mulf", "arith.addf"),
        "linalg.conv_2d_nhwc_hwcf": ("arith.mulf", "arith.addf"),
        "linalg.depthwise_conv_2d_nhwc_hwc": ("arith.mulf", "arith.addf"),
        "linalg.pooling_nhwc_max": (None, "arith.maximumf"),
        "linalg.pooling_nhwc_sum": (None, "arith.addf"),
        "linalg.fill": (None, None),
    }
    if op.name not in body_ops:
        raise LoopTransformError(f"cannot generalize {op.name}")
    if op.parent is None:
        raise LoopTransformError("op is detached")

    result_type = op.results[0].type if op.results else None
    rank = (
        result_type.rank
        if isinstance(result_type, ShapedType)
        else 2
    )
    iterator_types = ["parallel"] * rank + ["reduction"]

    builder = Builder.before(op)
    generic = builder.create(
        "linalg.generic",
        operands=list(op.operands),
        result_types=[r.type for r in op.results],
        attributes={
            "n_inputs": max(1, op.num_operands - 1),
            "iterator_types": iterator_types,
            "generalized_from": op.name,
        },
        regions=1,
    )
    element_types = [
        v.type.element_type if isinstance(v.type, ShapedType) else v.type
        for v in op.operands
    ]
    body = Block(element_types)
    generic.regions[0].add_block(body)
    body_builder = Builder.at_end(body)
    mul_name, add_name = body_ops[op.name]
    current: Value = body.args[0]
    if mul_name is not None and len(body.args) >= 2:
        current = body_builder.create(
            mul_name,
            operands=[body.args[0], body.args[1]],
            result_types=[element_types[0]],
        ).result
    if add_name is not None:
        current = body_builder.create(
            add_name,
            operands=[current, body.args[-1]],
            result_types=[element_types[0]],
        ).result
    body_builder.create("linalg.yield", operands=[current])
    op.replace_all_uses_with(list(generic.results))
    op.erase()
    return generic


def lower_linalg_to_loops(op: Operation) -> List[Operation]:
    """Lower a memref-based ``linalg.matmul`` to an scf.for nest.

    Returns the created loops outermost-first. Only the named matmul on
    static memrefs is supported — enough for the case-study workloads.
    """
    from ..dialects import arith, memref as memref_dialect, scf

    if op.name != "linalg.matmul":
        raise LoopTransformError(
            f"loop lowering implemented for linalg.matmul, got {op.name}"
        )
    if op.parent is None:
        raise LoopTransformError("op is detached")
    a, b, c = op.operands[0], op.operands[1], op.operands[2]
    for operand in (a, b, c):
        if not isinstance(operand.type, MemRefType):
            raise LoopTransformError(
                "loop lowering requires memref operands (bufferized form)"
            )
    a_type = a.type
    b_type = b.type
    assert isinstance(a_type, MemRefType) and isinstance(b_type, MemRefType)
    m_size, k_size = a_type.shape
    _, n_size = b_type.shape

    builder = Builder.before(op)
    zero = arith.index_constant(builder, 0)
    one = arith.index_constant(builder, 1)
    m_bound = arith.index_constant(builder, m_size)
    n_bound = arith.index_constant(builder, n_size)
    k_bound = arith.index_constant(builder, k_size)

    loop_i = scf.for_(builder, zero, m_bound, one)
    builder_i = Builder.at_end(loop_i.body)
    loop_j = scf.for_(builder_i, zero, n_bound, one)
    builder_j = Builder.at_end(loop_j.body)
    loop_k = scf.for_(builder_j, zero, k_bound, one)
    builder_k = Builder.at_end(loop_k.body)

    i, j, k = (loop_i.induction_var, loop_j.induction_var,
               loop_k.induction_var)
    a_val = memref_dialect.load(builder_k, a, [i, k])
    b_val = memref_dialect.load(builder_k, b, [k, j])
    c_val = memref_dialect.load(builder_k, c, [i, j])
    prod = arith.mulf(builder_k, a_val, b_val)
    acc = arith.addf(builder_k, c_val, prod)
    memref_dialect.store(builder_k, acc, c, [i, j])
    scf.yield_(builder_k)
    scf.yield_(Builder.at_end(loop_j.body))
    scf.yield_(Builder.at_end(loop_i.body))

    op.erase()
    return [loop_i, loop_j, loop_k]
