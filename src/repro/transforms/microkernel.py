"""Microkernel library substitution (case study 4).

Models the paper's custom transform that replaces a small fixed-size
matrix multiplication — such as the inner loops left by tiling — with a
call into a LIBXSMM-style microkernel library. The replacement *fails*
(with a silenceable error) when the library has no kernel for the
requested sizes, which is exactly what ``transform.alternatives``
recovers from in Fig. 8.

The matcher understands tiled access patterns: indices of the form
``outer_iv + inner_iv`` are split into a tile offset (defined outside
the nest) and the intra-tile index, and the emitted call receives
``memref.subview``s of the operands at those offsets — so the
substituted kernel computes exactly the tile the loops computed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..ir.builder import Builder
from ..ir.context import SymbolTable, nearest_symbol_table
from ..ir.core import Operation, Value
from .loop import LoopTransformError, _perfect_nest

#: A tile offset: an SSA value from outside the nest, or 0 (no offset).
Offset = Union[Value, int]


@dataclass
class MatmulPattern:
    """A recognised (possibly tiled) matmul nest:
    C[oi+i, oj+j] += A[oi2+i, ok+k] * B[ok2+k, oj2+j]."""

    m: int
    n: int
    k: int
    a: Value
    b: Value
    c: Value
    #: Per-operand (row, col) tile offsets.
    a_offsets: Tuple[Offset, Offset] = (0, 0)
    b_offsets: Tuple[Offset, Offset] = (0, 0)
    c_offsets: Tuple[Offset, Offset] = (0, 0)

    @property
    def flops(self) -> int:
        return 2 * self.m * self.n * self.k

    @property
    def is_tiled(self) -> bool:
        return any(
            not isinstance(offset, int) or offset != 0
            for offsets in (self.a_offsets, self.b_offsets,
                            self.c_offsets)
            for offset in offsets
        )


def _split_index(index: Value, ivs: Dict[int, int],
                 nest_root: Operation) -> Tuple[int, Offset]:
    """Decompose an access index into (nest-iv position, tile offset).

    Accepts a bare induction variable or ``addi`` of an induction
    variable with a value defined outside the nest.
    """
    if id(index) in ivs:
        return ivs[id(index)], 0
    defining = index.defining_op()
    if defining is not None and defining.name == "arith.addi":
        lhs, rhs = defining.operands
        for iv_candidate, offset_candidate in ((lhs, rhs), (rhs, lhs)):
            if id(iv_candidate) not in ivs:
                continue
            offset_op = offset_candidate.defining_op()
            if offset_op is not None and nest_root.is_ancestor_of(
                offset_op
            ):
                continue  # offset computed inside the nest: not a tile
            return ivs[id(iv_candidate)], offset_candidate
    raise LoopTransformError(
        "access index is not (tile offset +) an induction variable"
    )


def match_matmul_nest(root: Operation) -> MatmulPattern:
    """Structurally match a 3-deep (possibly tiled) matmul nest.

    Raises :class:`LoopTransformError` when the shape does not match —
    matching is the precondition check of the ``to_library`` transform.
    """
    nest = _perfect_nest(root, 3)
    dims: List[int] = []
    for loop in nest:
        bounds = loop.constant_bounds()  # type: ignore[attr-defined]
        if bounds is None:
            raise LoopTransformError("matmul match requires constant bounds")
        lb, ub, step = bounds
        if step != 1:
            raise LoopTransformError("matmul match requires unit steps")
        dims.append(ub - lb)

    ivs = {
        id(loop.induction_var): position  # type: ignore[attr-defined]
        for position, loop in enumerate(nest)
    }

    innermost = nest[-1]
    body_ops = [
        op for op in innermost.body.ops if op.name != "scf.yield"  # type: ignore[attr-defined]
    ]
    loads = [op for op in body_ops if op.name == "memref.load"]
    stores = [op for op in body_ops if op.name == "memref.store"]
    muls = [op for op in body_ops if op.name == "arith.mulf"]
    adds = [op for op in body_ops if op.name == "arith.addf"]
    if len(loads) != 3 or len(stores) != 1 or len(muls) != 1 or len(adds) != 1:
        raise LoopTransformError(
            "loop nest body does not look like a matmul"
        )

    def access_signature(op: Operation, indices: Sequence[Value]):
        if len(indices) != 2:
            raise LoopTransformError("matmul match requires 2-d accesses")
        return tuple(_split_index(index, ivs, root) for index in indices)

    store = stores[0]
    accumulator = store.memref  # type: ignore[attr-defined]
    store_sig = access_signature(store, store.indices)  # type: ignore[attr-defined]

    load_info = []
    for load in loads:
        load_info.append(
            (load.memref, access_signature(load, load.indices))  # type: ignore[attr-defined]
        )

    # Identify loop roles from the accumulator: C[pos_m, pos_n].
    (pos_m, c_row_off), (pos_n, c_col_off) = store_sig
    pos_k = ({0, 1, 2} - {pos_m, pos_n}).pop()

    a_value = b_value = None
    a_offsets = b_offsets = (0, 0)
    for ref, sig in load_info:
        positions = (sig[0][0], sig[1][0])
        if positions == (pos_m, pos_n) and ref is accumulator:
            continue  # the C load
        if positions == (pos_m, pos_k):
            a_value = ref
            a_offsets = (sig[0][1], sig[1][1])
        elif positions == (pos_k, pos_n):
            b_value = ref
            b_offsets = (sig[0][1], sig[1][1])
    if a_value is None or b_value is None:
        raise LoopTransformError(
            "could not identify A[i,k] / B[k,j] operands"
        )

    return MatmulPattern(
        dims[pos_m], dims[pos_n], dims[pos_k],
        a_value, b_value, accumulator,
        a_offsets, b_offsets, (c_row_off, c_col_off),
    )


class MicrokernelLibrary:
    """A LIBXSMM-like library with a bounded kernel table.

    ``find_kernel`` returns a symbol name when a specialized kernel for
    the given sizes exists, or None — driving success/failure of the
    library-substitution transform.
    """

    def __init__(self, name: str = "libxsmm", max_mn: int = 64,
                 max_k: int = 512, alignment: int = 4):
        self.name = name
        self.max_mn = max_mn
        self.max_k = max_k
        self.alignment = alignment

    def supports(self, m: int, n: int, k: int) -> bool:
        return (
            0 < m <= self.max_mn
            and 0 < n <= self.max_mn
            and 0 < k <= self.max_k
            and m % self.alignment == 0
            and n % self.alignment == 0
        )

    def find_kernel(self, m: int, n: int, k: int) -> Optional[str]:
        if not self.supports(m, n, k):
            return None
        return f"{self.name}_smm_{m}x{n}x{k}"


#: The default library instance used by the ``to_library`` transform.
XSMM_LIBRARY = MicrokernelLibrary()


def _tile_view(builder: Builder, source: Value,
               offsets: Tuple[Offset, Offset],
               sizes: Tuple[int, int]) -> Value:
    """The operand the kernel sees: a subview at the tile offsets (or
    the source itself for an untiled, exact-size access)."""
    from ..dialects import memref as memref_dialect
    from ..ir.types import MemRefType

    source_type = source.type
    plain = all(isinstance(o, int) and o == 0 for o in offsets)
    if (
        plain
        and isinstance(source_type, MemRefType)
        and source_type.shape == tuple(sizes)
    ):
        return source
    return memref_dialect.subview(
        builder, source, list(offsets), list(sizes), [1, 1]
    )


def replace_with_library_call(
    root: Operation, library: MicrokernelLibrary = XSMM_LIBRARY
) -> Operation:
    """Replace a matmul loop nest with a microkernel library call.

    Declares the kernel in the enclosing module's symbol table when
    needed, materializes tile subviews for tiled nests, and returns the
    created ``func.call``. Raises :class:`LoopTransformError`
    (silenceable) when the nest does not match or the library lacks a
    suitable kernel — the failure mode ``alternatives`` absorbs in the
    paper's Fig. 8.
    """
    from ..dialects import func as func_dialect

    pattern = match_matmul_nest(root)
    kernel = library.find_kernel(pattern.m, pattern.n, pattern.k)
    if kernel is None:
        raise LoopTransformError(
            f"{library.name} has no kernel for "
            f"{pattern.m}x{pattern.n}x{pattern.k}"
        )

    table_op = nearest_symbol_table(root)
    if table_op is None:
        raise LoopTransformError("loop nest is not inside a module")

    builder = Builder.before(root)
    a_view = _tile_view(builder, pattern.a, pattern.a_offsets,
                        (pattern.m, pattern.k))
    b_view = _tile_view(builder, pattern.b, pattern.b_offsets,
                        (pattern.k, pattern.n))
    c_view = _tile_view(builder, pattern.c, pattern.c_offsets,
                        (pattern.m, pattern.n))

    table = SymbolTable(table_op)
    if table.lookup(kernel) is None:
        declaration = func_dialect.func(
            kernel,
            [a_view.type, b_view.type, c_view.type],
            declaration=True,
        )
        declaration.set_attr("microkernel", True)
        table.insert(declaration)

    call = func_dialect.call(builder, kernel, [a_view, b_view, c_view])
    call.set_attr("microkernel", True)
    call.set_attr("microkernel_flops", pattern.flops)
    root.erase()
    return call
