"""Loop transformations: tiling, splitting, unrolling, interchange, ...

All functions operate on ``scf.for`` operations and raise
:class:`LoopTransformError` when a precondition fails — the transform
interpreter maps these to *silenceable* errors (paper §3), so
``transform.alternatives`` can recover from them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.builder import Builder
from ..ir.core import Operation, Value


class LoopTransformError(Exception):
    """A loop transformation precondition failed (silenceable)."""


def _require_for(loop: Operation, what: str) -> None:
    if loop.name != "scf.for":
        raise LoopTransformError(f"{what} requires an scf.for, got {loop.name}")
    if loop.parent is None:
        raise LoopTransformError(f"{what}: loop is detached from the IR")


def _constant_bounds(loop: Operation, what: str) -> Tuple[int, int, int]:
    bounds = loop.constant_bounds()  # type: ignore[attr-defined]
    if bounds is None:
        raise LoopTransformError(f"{what} requires constant loop bounds")
    return bounds


def _clone_body_at(loop: Operation, builder: Builder,
                   iv_value: Value, iter_values: Sequence[Value]) -> List[Value]:
    """Clone the loop body at the builder, returning the yielded values."""
    value_map: Dict[Value, Value] = {loop.induction_var: iv_value}  # type: ignore[attr-defined]
    for old_arg, new_value in zip(loop.iter_args, iter_values):  # type: ignore[attr-defined]
        value_map[old_arg] = new_value
    yielded: List[Value] = list(iter_values)
    for op in loop.body.ops:  # type: ignore[attr-defined]
        if op.name == "scf.yield":
            yielded = [value_map.get(v, v) for v in op.operands]
            continue
        builder.insert(op.clone(value_map))
    return yielded


# ---------------------------------------------------------------------------
# Splitting
# ---------------------------------------------------------------------------


def split_loop(loop: Operation, divisor: int) -> Tuple[Operation, Operation]:
    """Split a loop into a part whose trip count is divisible by
    ``divisor`` and a remainder loop (paper Fig. 1 line 6, Fig. 8 line 3).

    Returns ``(main, rest)``. The main loop runs
    ``lb .. lb + (trip // divisor) * divisor * step`` and the rest loop
    covers the remaining iterations. Iteration arguments are threaded
    from main into rest.
    """
    from ..dialects import arith, scf

    _require_for(loop, "loop splitting")
    if divisor <= 0:
        raise LoopTransformError("split divisor must be positive")
    lb, ub, step = _constant_bounds(loop, "loop splitting")
    trip = max(0, -(-(ub - lb) // step))
    main_trips = (trip // divisor) * divisor
    split_point = lb + main_trips * step

    builder = Builder.before(loop)
    split_bound = arith.index_constant(builder, split_point)

    inits = list(loop.init_args)  # type: ignore[attr-defined]
    main = scf.for_(builder, loop.lower_bound, split_bound, loop.step, inits)  # type: ignore[attr-defined]
    main_body = Builder.at_end(main.body)
    main_yields = _clone_body_at(
        loop, main_body, main.induction_var, list(main.iter_args)
    )
    scf.yield_(main_body, main_yields)

    rest = scf.for_(builder, split_bound, loop.upper_bound, loop.step,  # type: ignore[attr-defined]
                    list(main.results))
    rest_body = Builder.at_end(rest.body)
    rest_yields = _clone_body_at(
        loop, rest_body, rest.induction_var, list(rest.iter_args)
    )
    scf.yield_(rest_body, rest_yields)

    loop.replace_all_uses_with(list(rest.results))
    loop.erase()
    return main, rest


# ---------------------------------------------------------------------------
# Tiling
# ---------------------------------------------------------------------------


def tile_loop(loop: Operation, tile_size: int) -> Tuple[Operation, Operation]:
    """Strip-mine a single loop by ``tile_size``: returns (outer, inner).

    The trip count must be divisible by the tile size (use
    :func:`split_loop` first otherwise — exactly the composition in the
    paper's Fig. 1/Fig. 8).
    """
    from ..dialects import arith, scf

    _require_for(loop, "loop tiling")
    if tile_size <= 0:
        raise LoopTransformError("tile size must be positive")
    lb, ub, step = _constant_bounds(loop, "loop tiling")
    trip = max(0, -(-(ub - lb) // step))
    if trip % tile_size != 0:
        raise LoopTransformError(
            f"trip count {trip} not divisible by tile size {tile_size}; "
            "split the loop first"
        )

    builder = Builder.before(loop)
    outer_step = arith.index_constant(builder, tile_size * step)
    inits = list(loop.init_args)  # type: ignore[attr-defined]
    outer = scf.for_(builder, loop.lower_bound, loop.upper_bound,  # type: ignore[attr-defined]
                     outer_step, inits)

    outer_body = Builder.at_end(outer.body)
    zero = arith.index_constant(outer_body, 0)
    inner_ub = arith.index_constant(outer_body, tile_size * step)
    inner_step = arith.index_constant(outer_body, step)
    inner = scf.for_(outer_body, zero, inner_ub, inner_step,
                     list(outer.iter_args))

    inner_body = Builder.at_end(inner.body)
    iv = arith.addi(inner_body, outer.induction_var, inner.induction_var)
    yields = _clone_body_at(loop, inner_body, iv, list(inner.iter_args))
    scf.yield_(inner_body, yields)
    scf.yield_(Builder.at_end(outer.body), list(inner.results))

    loop.replace_all_uses_with(list(outer.results))
    loop.erase()
    return outer, inner


def _perfect_nest(loop: Operation, depth: int) -> List[Operation]:
    """The perfectly nested loops rooted at ``loop`` (length ``depth``).

    Pure index computations (e.g. the ``addi`` reconstructing tiled
    induction variables) are tolerated between nest levels; any other
    side-effecting op breaks perfection.
    """
    from ..ir.core import Pure

    nest = [loop]
    current = loop
    while len(nest) < depth:
        body_ops = [
            op for op in current.body.ops if op.name != "scf.yield"  # type: ignore[attr-defined]
        ]
        loops = [op for op in body_ops if op.name == "scf.for"]
        others = [op for op in body_ops if op.name != "scf.for"]
        if len(loops) != 1 or any(not op.has_trait(Pure) for op in others):
            raise LoopTransformError(
                f"expected a perfect loop nest of depth {depth}"
            )
        current = loops[0]
        nest.append(current)
    return nest


def tile_loop_nest(root: Operation,
                   tile_sizes: Sequence[int]) -> Tuple[List[Operation], List[Operation]]:
    """Tile a perfect loop nest, producing all tile loops outside all
    point loops: ``(i, j) -> (i0, j0, i1, j1)``.

    Returns ``(tile_loops, point_loops)``. A tile size of 0 leaves the
    corresponding loop untiled (a no-op in that dimension, matching the
    paper's "tiling by 0 is a no-op" simplification rule).
    """
    from ..dialects import arith, scf

    _require_for(root, "nest tiling")
    sizes = list(tile_sizes)
    nest = _perfect_nest(root, len(sizes))
    bounds = [_constant_bounds(l, "nest tiling") for l in nest]
    for (lb, ub, step), size in zip(bounds, sizes):
        trip = max(0, -(-(ub - lb) // step))
        if size < 0:
            raise LoopTransformError("negative tile size")
        if size and trip % size != 0:
            raise LoopTransformError(
                f"trip count {trip} not divisible by tile size {size}"
            )
    if any(len(l.init_args) for l in nest):  # type: ignore[attr-defined]
        raise LoopTransformError("nest tiling does not support iter_args")

    innermost = nest[-1]
    builder = Builder.before(root)

    tile_loops: List[Operation] = []
    point_loops: List[Operation] = []
    iv_values: List[Value] = []

    # Build the tile loops (outer band).
    for (lb, ub, step), size in zip(bounds, sizes):
        effective = size if size else 1
        lb_value = arith.index_constant(builder, lb)
        ub_value = arith.index_constant(builder, ub)
        step_value = arith.index_constant(
            builder, (size * step) if size else step
        )
        tile_loop_op = scf.for_(builder, lb_value, ub_value, step_value)
        tile_loops.append(tile_loop_op)
        builder = Builder.at_end(tile_loop_op.body)

    # Build the point loops (inner band) inside the innermost tile loop.
    for index, ((lb, ub, step), size) in enumerate(zip(bounds, sizes)):
        if not size:
            iv_values.append(tile_loops[index].induction_var)
            continue
        zero = arith.index_constant(builder, 0)
        extent = arith.index_constant(builder, size * step)
        step_value = arith.index_constant(builder, step)
        point_loop = scf.for_(builder, zero, extent, step_value)
        point_loops.append(point_loop)
        builder = Builder.at_end(point_loop.body)
        iv = arith.addi(
            builder, tile_loops[index].induction_var,
            point_loop.induction_var,
        )
        iv_values.append(iv)

    # Clone the innermost body with remapped induction variables.
    value_map: Dict[Value, Value] = {
        loop.induction_var: iv  # type: ignore[attr-defined]
        for loop, iv in zip(nest, iv_values)
    }
    for op in innermost.body.ops:  # type: ignore[attr-defined]
        if op.name == "scf.yield":
            continue
        builder.insert(op.clone(value_map))

    # Terminate every created loop body.
    for created in [*tile_loops, *point_loops]:
        body = created.body
        if not body.ops or body.ops[-1].name != "scf.yield":
            scf.yield_(Builder.at_end(body))

    root.erase()
    return tile_loops, point_loops


# ---------------------------------------------------------------------------
# Unrolling
# ---------------------------------------------------------------------------


def unroll_loop(loop: Operation, factor: Optional[int] = None,
                full: bool = False) -> None:
    """Unroll a loop fully or by ``factor``.

    Full unrolling requires constant bounds; the loop op is erased and
    its body is repeated once per iteration (so the handle to it is
    *invalidated* — the static error of Fig. 1 line 11).
    """
    from ..dialects import arith, scf

    _require_for(loop, "loop unrolling")
    lb, ub, step = _constant_bounds(loop, "loop unrolling")
    trip = max(0, -(-(ub - lb) // step))

    if full:
        builder = Builder.before(loop)
        current: List[Value] = list(loop.init_args)  # type: ignore[attr-defined]
        for iteration in range(trip):
            iv = arith.index_constant(builder, lb + iteration * step)
            current = _clone_body_at(loop, builder, iv, current)
        loop.replace_all_uses_with(current)
        loop.erase()
        return

    if factor is None or factor <= 0:
        raise LoopTransformError("partial unrolling requires a factor > 0")
    if factor == 1:
        return  # unroll by 1 is a no-op (paper §3.4 simplification rule)
    if trip % factor != 0:
        raise LoopTransformError(
            f"trip count {trip} not divisible by unroll factor {factor}"
        )

    builder = Builder.before(loop)
    new_step = arith.index_constant(builder, step * factor)
    inits = list(loop.init_args)  # type: ignore[attr-defined]
    new_loop = scf.for_(builder, loop.lower_bound, loop.upper_bound,  # type: ignore[attr-defined]
                        new_step, inits)
    body_builder = Builder.at_end(new_loop.body)
    current = list(new_loop.iter_args)
    for copy in range(factor):
        offset = arith.index_constant(body_builder, copy * step)
        iv = arith.addi(body_builder, new_loop.induction_var, offset)
        current = _clone_body_at(loop, body_builder, iv, current)
    scf.yield_(Builder.at_end(new_loop.body), current)
    loop.replace_all_uses_with(list(new_loop.results))
    loop.erase()


# ---------------------------------------------------------------------------
# Interchange, peeling, hoisting, fusion
# ---------------------------------------------------------------------------


def interchange_loops(outer: Operation, inner: Operation) -> None:
    """Swap two perfectly nested loops in place.

    The inner loop's bounds must not depend on the outer induction
    variable, and neither loop may carry iteration arguments.
    """
    _require_for(outer, "loop interchange")
    _require_for(inner, "loop interchange")
    if inner.parent is None or inner.parent.parent_op is not outer:
        raise LoopTransformError(
            "interchange requires directly nested loops"
        )
    body_ops = [
        op for op in outer.body.ops if op.name != "scf.yield"  # type: ignore[attr-defined]
    ]
    if body_ops != [inner]:
        raise LoopTransformError("interchange requires a perfect nest")
    if outer.init_args or inner.init_args:  # type: ignore[attr-defined]
        raise LoopTransformError("interchange does not support iter_args")
    for bound in inner.operands[:3]:
        defining = bound.defining_op()
        if defining is not None and outer.is_ancestor_of(defining):
            raise LoopTransformError(
                "inner loop bounds depend on the outer loop"
            )
        if bound is outer.induction_var:  # type: ignore[attr-defined]
            raise LoopTransformError(
                "inner loop bounds depend on the outer induction variable"
            )

    outer_bounds = list(outer.operands[:3])
    inner_bounds = list(inner.operands[:3])
    for index, value in enumerate(inner_bounds):
        outer.set_operand(index, value)
    for index, value in enumerate(outer_bounds):
        inner.set_operand(index, value)
    # Swap the roles of the induction variables by swapping their uses.
    outer_iv = outer.induction_var  # type: ignore[attr-defined]
    inner_iv = inner.induction_var  # type: ignore[attr-defined]
    outer_uses = list(outer_iv.uses)
    inner_uses = list(inner_iv.uses)
    for use in outer_uses:
        use.set(inner_iv)
    for use in inner_uses:
        use.set(outer_iv)


def peel_loop(loop: Operation) -> Tuple[Operation, Operation]:
    """Peel the last partial iteration block: split at the largest
    step-aligned point (equivalent to splitting by the step multiple).
    """
    _require_for(loop, "loop peeling")
    lb, ub, step = _constant_bounds(loop, "loop peeling")
    if step <= 1:
        raise LoopTransformError("peeling needs a step greater than 1")
    return split_loop(loop, 1)


def hoist_loop_invariants_to(loop: Operation,
                             target: Optional[Operation] = None) -> int:
    """Hoist loop-invariant pure ops out of ``loop``.

    With a ``target`` function, hoisted ops are moved to its entry block
    (paper Fig. 1 line 3: ``loop.hoist from %outer to %func``);
    otherwise they land immediately before the loop.
    """
    from ..passes.licm import hoist_loop_invariants

    _require_for(loop, "hoisting")
    count = hoist_loop_invariants(loop)
    if target is not None and count:
        if not target.regions or not target.regions[0].blocks:
            raise LoopTransformError("hoist target has no entry block")
        entry = target.regions[0].entry_block
        block = loop.parent
        assert block is not None
        if block is not entry:
            # Move the freshly hoisted ops (now just before the loop) to
            # the target's entry block when their operands allow it.
            moved = 0
            position = block.ops.index(loop)
            for op in list(block.ops[:position]):
                defined_locally = any(
                    operand.defining_op() is not None
                    and operand.defining_op().parent is block
                    for operand in op.operands
                )
                if defined_locally or not op.results:
                    continue
                block.remove(op)
                entry.insert(moved, op)
                op.parent = entry
                moved += 1
    return count


def fuse_sibling_loops(first: Operation, second: Operation) -> Operation:
    """Fuse two adjacent loops with identical bounds into one."""
    from ..dialects import scf

    _require_for(first, "loop fusion")
    _require_for(second, "loop fusion")
    if first.parent is not second.parent:
        raise LoopTransformError("fusion requires sibling loops")
    if [v for v in first.operands[:3]] != [v for v in second.operands[:3]]:
        if (first.constant_bounds() is None  # type: ignore[attr-defined]
                or first.constant_bounds() != second.constant_bounds()):  # type: ignore[attr-defined]
            raise LoopTransformError("fusion requires identical bounds")
    if first.init_args or second.init_args:  # type: ignore[attr-defined]
        raise LoopTransformError("fusion does not support iter_args")
    # All ops between the two loops must not depend on the first loop.
    block = first.parent
    assert block is not None
    start = block.ops.index(first)
    end = block.ops.index(second)
    if any(op.name != "scf.for" for op in block.ops[start + 1 : end]):
        raise LoopTransformError("loops are not adjacent")

    yield_op = first.body.ops[-1]  # type: ignore[attr-defined]
    insert_builder = Builder.before(yield_op)
    value_map: Dict[Value, Value] = {
        second.induction_var: first.induction_var  # type: ignore[attr-defined]
    }
    for op in second.body.ops:  # type: ignore[attr-defined]
        if op.name == "scf.yield":
            continue
        insert_builder.insert(op.clone(value_map))
    second.erase()
    return first
