"""Fine-grained transformation utilities ("hidden compiler features").

These are the helper functions that, in upstream MLIR, exist inside
passes but are not exposed to users. The Transform dialect
(:mod:`repro.core`) surfaces each of them as a transform operation.
"""

from .loop import (
    LoopTransformError,
    fuse_sibling_loops,
    hoist_loop_invariants_to,
    interchange_loops,
    peel_loop,
    split_loop,
    tile_loop,
    tile_loop_nest,
    unroll_loop,
)
from .microkernel import (
    MatmulPattern,
    MicrokernelLibrary,
    XSMM_LIBRARY,
    match_matmul_nest,
    replace_with_library_call,
)
from .linalg_utils import generalize_named_op, lower_linalg_to_loops

__all__ = [
    "LoopTransformError",
    "MatmulPattern",
    "MicrokernelLibrary",
    "XSMM_LIBRARY",
    "fuse_sibling_loops",
    "generalize_named_op",
    "hoist_loop_invariants_to",
    "interchange_loops",
    "lower_linalg_to_loops",
    "match_matmul_nest",
    "peel_loop",
    "replace_with_library_call",
    "split_loop",
    "tile_loop",
    "tile_loop_nest",
    "unroll_loop",
]
