"""The profiler: counters and timers behind the `-mlir-timing` report.

A single :class:`Profiler` instance is threaded through the hot paths —
the transform interpreter (per-transform-op timing), the greedy pattern
driver (per-pattern match/apply counts and wall time, worklist depth),
the pass manager (per-pass timing) and the transform state (handle
invalidation fan-out). Every recording entry point is a no-op-cheap
method call; callers only pay the ``perf_counter`` cost when a profiler
is actually attached.

The textual report mirrors MLIR's ``-mlir-timing`` output: one section
per instrument, rows sorted by total wall time.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List


@dataclass
class PatternStat:
    """Match/apply accounting for one rewrite pattern."""

    attempts: int = 0
    applies: int = 0
    seconds: float = 0.0

    @property
    def hit_rate(self) -> float:
        return self.applies / self.attempts if self.attempts else 0.0


@dataclass
class TimedStat:
    """Count + wall time for a named unit (transform op or pass)."""

    count: int = 0
    seconds: float = 0.0


@dataclass
class WorklistStats:
    """Greedy-driver worklist traffic."""

    pushes: int = 0
    pops: int = 0
    max_depth: int = 0
    #: Number of driver runs these counters aggregate over.
    runs: int = 0


@dataclass
class InvalidationStats:
    """Handle-invalidation fan-out (consume events vs handles killed)."""

    events: int = 0
    handles_invalidated: int = 0

    @property
    def mean_fanout(self) -> float:
        return self.handles_invalidated / self.events if self.events else 0.0


class Profiler:
    """Collects timing/counter data from the transform hot paths."""

    def __init__(self) -> None:
        self.patterns: Dict[str, PatternStat] = {}
        self.transforms: Dict[str, TimedStat] = {}
        self.passes: Dict[str, TimedStat] = {}
        self.worklist = WorklistStats()
        self.invalidation = InvalidationStats()

    # -- recording entry points ---------------------------------------------

    def record_pattern(self, label: str, applied: bool,
                       seconds: float) -> None:
        stat = self.patterns.get(label)
        if stat is None:
            stat = self.patterns[label] = PatternStat()
        stat.attempts += 1
        if applied:
            stat.applies += 1
        stat.seconds += seconds

    def record_transform(self, name: str, seconds: float) -> None:
        stat = self.transforms.get(name)
        if stat is None:
            stat = self.transforms[name] = TimedStat()
        stat.count += 1
        stat.seconds += seconds

    def record_pass(self, name: str, seconds: float) -> None:
        stat = self.passes.get(name)
        if stat is None:
            stat = self.passes[name] = TimedStat()
        stat.count += 1
        stat.seconds += seconds

    def record_worklist_push(self, depth: int) -> None:
        self.worklist.pushes += 1
        if depth > self.worklist.max_depth:
            self.worklist.max_depth = depth

    def record_worklist_seed(self, depth: int) -> None:
        self.worklist.pushes += depth
        if depth > self.worklist.max_depth:
            self.worklist.max_depth = depth

    def record_worklist_pop(self) -> None:
        self.worklist.pops += 1

    def record_driver_run(self) -> None:
        self.worklist.runs += 1

    def record_invalidation(self, handles: int) -> None:
        self.invalidation.events += 1
        self.invalidation.handles_invalidated += handles

    @contextmanager
    def time_pass(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record_pass(name, time.perf_counter() - start)

    def reset(self) -> None:
        self.__init__()

    # -- reporting ----------------------------------------------------------

    def render(self) -> str:
        """A `-mlir-timing`-style text report of everything recorded."""
        bar = "===" + "-" * 70 + "==="
        lines: List[str] = [bar, "  ... Transform execution timing report ...",
                            bar]

        if self.transforms:
            total = sum(s.seconds for s in self.transforms.values())
            lines.append(f"  Transform ops ({total * 1e3:.3f} ms total)")
            lines.append(f"    {'wall (ms)':>10s}  {'count':>7s}  name")
            for name, stat in sorted(self.transforms.items(),
                                     key=lambda kv: -kv[1].seconds):
                lines.append(
                    f"    {stat.seconds * 1e3:10.3f}  {stat.count:7d}  {name}"
                )
            lines.append("")

        if self.patterns:
            total = sum(s.seconds for s in self.patterns.values())
            lines.append(f"  Patterns ({total * 1e3:.3f} ms total)")
            lines.append(
                f"    {'wall (ms)':>10s}  {'applied':>8s}  "
                f"{'attempts':>8s}  pattern"
            )
            for label, stat in sorted(self.patterns.items(),
                                      key=lambda kv: -kv[1].seconds):
                lines.append(
                    f"    {stat.seconds * 1e3:10.3f}  {stat.applies:8d}  "
                    f"{stat.attempts:8d}  {label}"
                )
            lines.append("")

        if self.passes:
            total = sum(s.seconds for s in self.passes.values())
            lines.append(f"  Passes ({total * 1e3:.3f} ms total)")
            lines.append(f"    {'wall (ms)':>10s}  {'count':>7s}  pass")
            for name, stat in sorted(self.passes.items(),
                                     key=lambda kv: -kv[1].seconds):
                lines.append(
                    f"    {stat.seconds * 1e3:10.3f}  {stat.count:7d}  {name}"
                )
            lines.append("")

        if self.worklist.pushes or self.worklist.runs:
            lines.append("  Greedy-driver worklist")
            lines.append(
                f"    runs: {self.worklist.runs}  "
                f"pushes: {self.worklist.pushes}  "
                f"pops: {self.worklist.pops}  "
                f"max depth: {self.worklist.max_depth}"
            )
            lines.append("")

        if self.invalidation.events:
            lines.append("  Handle invalidation")
            lines.append(
                f"    consume events: {self.invalidation.events}  "
                f"handles invalidated: "
                f"{self.invalidation.handles_invalidated}  "
                f"mean fan-out: {self.invalidation.mean_fanout:.2f}"
            )
            lines.append("")

        if len(lines) == 3:
            lines.append("  (nothing recorded)")
        return "\n".join(lines).rstrip()
