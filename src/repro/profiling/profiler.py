"""The profiler: counters and timers behind the `-mlir-timing` report.

A single :class:`Profiler` instance is threaded through the hot paths —
the transform interpreter (per-transform-op timing), the greedy pattern
driver (per-pattern match/apply counts and wall time, worklist depth),
the pass manager (per-pass timing) and the transform state (handle
invalidation fan-out). Every recording entry point is a no-op-cheap
method call; callers only pay the ``perf_counter`` cost when a profiler
is actually attached.

The textual report mirrors MLIR's ``-mlir-timing`` output: one section
per instrument, rows sorted by total wall time.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

from ..observability.metrics import DEPTH_BUCKETS, MetricsRegistry


@dataclass
class PatternStat:
    """Match/apply accounting for one rewrite pattern."""

    attempts: int = 0
    applies: int = 0
    seconds: float = 0.0

    @property
    def hit_rate(self) -> float:
        return self.applies / self.attempts if self.attempts else 0.0


@dataclass
class TimedStat:
    """Count + wall time for a named unit (transform op or pass)."""

    count: int = 0
    seconds: float = 0.0


@dataclass
class WorklistStats:
    """Greedy-driver worklist traffic."""

    pushes: int = 0
    pops: int = 0
    max_depth: int = 0
    #: Number of driver runs these counters aggregate over.
    runs: int = 0


@dataclass
class InvalidationStats:
    """Handle-invalidation fan-out (consume events vs handles killed)."""

    events: int = 0
    handles_invalidated: int = 0

    @property
    def mean_fanout(self) -> float:
        return self.handles_invalidated / self.events if self.events else 0.0


@dataclass
class ServiceStats:
    """Compile-service traffic (queue depth, jobs, cache, restarts).

    Fed by :class:`repro.service.engine.CompileEngine` and the asyncio
    frontier; ``jobs_by_status`` buckets finished jobs by their
    :class:`~repro.service.engine.JobStatus` value.
    """

    jobs: int = 0
    job_seconds: float = 0.0
    max_job_seconds: float = 0.0
    jobs_by_status: Dict[str, int] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    worker_restarts: int = 0
    queue_samples: int = 0
    queue_depth_sum: int = 0
    max_queue_depth: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def mean_job_seconds(self) -> float:
        return self.job_seconds / self.jobs if self.jobs else 0.0

    @property
    def mean_queue_depth(self) -> float:
        if not self.queue_samples:
            return 0.0
        return self.queue_depth_sum / self.queue_samples


@dataclass
class ResilienceStats:
    """Fault-recovery accounting for the compile service.

    Fed by :class:`repro.service.engine.CompileEngine` whenever a
    resilience policy acts: a retry is granted (with its backoff), a
    job digest is quarantined (:data:`JobStatus.POISONED`), or the
    pool-health monitor trips and degrades the engine to in-process
    execution. All zeros unless faults (real or injected via
    :mod:`repro.testing.faults`) actually occurred.
    """

    retries: int = 0
    backoff_seconds: float = 0.0
    quarantined: int = 0
    pool_degradations: int = 0

    @property
    def any(self) -> bool:
        return bool(self.retries or self.quarantined
                    or self.pool_degradations)


class Profiler:
    """Collects timing/counter data from the transform hot paths.

    Every instrument is now backed twice: the cheap dataclass sections
    (the ``-mlir-timing`` report) and a unified
    :class:`~repro.observability.metrics.MetricsRegistry` — service-
    level distributions (job wall time, queue depth, per-transform-op
    seconds) are recorded into registry histograms *live*, everything
    scalar is synced on :meth:`registry_snapshot`, which returns the
    one versioned JSON schema consumers (``repro-batch --json``, the
    future ``repro-serve /stats``) read.
    """

    #: Version of the :meth:`to_json` report shape.
    SCHEMA_VERSION = 2

    def __init__(self) -> None:
        self.patterns: Dict[str, PatternStat] = {}
        self.transforms: Dict[str, TimedStat] = {}
        self.passes: Dict[str, TimedStat] = {}
        self.worklist = WorklistStats()
        self.invalidation = InvalidationStats()
        self.service = ServiceStats()
        self.resilience = ResilienceStats()
        #: The unified metrics registry this profiler feeds.
        self.registry = MetricsRegistry()
        # Hot-path instruments, resolved once (observe() is then one
        # bisect + a few adds under the instrument's own lock).
        self._h_transform_seconds = self.registry.histogram(
            "interpreter.transform_seconds"
        )
        self._h_job_seconds = self.registry.histogram(
            "service.job_seconds"
        )
        self._h_queue_depth = self.registry.histogram(
            "service.queue_depth", DEPTH_BUCKETS
        )
        self._g_queue_depth = self.registry.gauge(
            "service.queue_depth_current"
        )
        #: name -> serializer; *every* registered section appears in
        #: :meth:`to_json` — sections added after construction
        #: (:meth:`add_section`) can no longer be silently dropped
        #: from reports.
        self._sections: Dict[str, Callable[[], object]] = {}
        #: name -> optional text renderer for :meth:`render`.
        self._renderers: Dict[str, Callable[[], List[str]]] = {}
        self._register_builtin_sections()
        # Structural-digest traffic is recorded process-globally in
        # repro.ir.core.DIGEST_STATS (the memo lives on the ops, not on
        # any profiler); snapshot the baseline so this instance reports
        # only the deltas accrued during its own lifetime.
        from ..ir.core import DIGEST_STATS

        self._digest_baseline = DIGEST_STATS.snapshot()

    # -- section registry ----------------------------------------------------

    def add_section(self, name: str,
                    to_json: Callable[[], object],
                    render: Optional[Callable[[], List[str]]] = None,
                    ) -> None:
        """Register a report section. ``to_json`` produces the
        section's JSON value; ``render`` (optional) produces report
        lines for :meth:`render`. Registration is the serialization
        contract: a registered section is never omitted from
        :meth:`to_json`."""
        self._sections[name] = to_json
        if render is not None:
            self._renderers[name] = render

    def _register_builtin_sections(self) -> None:
        self.add_section("transforms", lambda: {
            name: {"count": s.count, "seconds": s.seconds}
            for name, s in self.transforms.items()
        })
        self.add_section("patterns", lambda: {
            label: {
                "attempts": s.attempts,
                "applies": s.applies,
                "seconds": s.seconds,
            }
            for label, s in self.patterns.items()
        })
        self.add_section("passes", lambda: {
            name: {"count": s.count, "seconds": s.seconds}
            for name, s in self.passes.items()
        })
        self.add_section("worklist", lambda: {
            "runs": self.worklist.runs,
            "pushes": self.worklist.pushes,
            "pops": self.worklist.pops,
            "max_depth": self.worklist.max_depth,
        })
        self.add_section("invalidation", lambda: {
            "events": self.invalidation.events,
            "handles_invalidated":
                self.invalidation.handles_invalidated,
        })
        self.add_section("service", lambda: {
            "jobs": self.service.jobs,
            "jobs_by_status": dict(self.service.jobs_by_status),
            "job_seconds": self.service.job_seconds,
            "mean_job_seconds": self.service.mean_job_seconds,
            "max_job_seconds": self.service.max_job_seconds,
            "cache_hits": self.service.cache_hits,
            "cache_misses": self.service.cache_misses,
            "cache_hit_rate": self.service.hit_rate,
            "worker_restarts": self.service.worker_restarts,
            "queue_samples": self.service.queue_samples,
            "mean_queue_depth": self.service.mean_queue_depth,
            "max_queue_depth": self.service.max_queue_depth,
        })
        self.add_section("resilience", lambda: {
            "retries": self.resilience.retries,
            "backoff_seconds": self.resilience.backoff_seconds,
            "quarantined": self.resilience.quarantined,
            "pool_degradations": self.resilience.pool_degradations,
        })
        self.add_section("hashing", self.digest_counters)

    # -- structural-digest deltas -------------------------------------------

    def digest_counters(self) -> Dict[str, int]:
        """Memo hits / recomputes / invalidations since construction."""
        from ..ir.core import DIGEST_STATS

        hits, recomputes, invalidations = DIGEST_STATS.snapshot()
        base_hits, base_recomputes, base_invalidations = \
            self._digest_baseline
        return {
            "hash_hits": hits - base_hits,
            "hash_recomputes": recomputes - base_recomputes,
            "hash_invalidations": invalidations - base_invalidations,
        }

    # -- recording entry points ---------------------------------------------

    def record_pattern(self, label: str, applied: bool,
                       seconds: float) -> None:
        stat = self.patterns.get(label)
        if stat is None:
            stat = self.patterns[label] = PatternStat()
        stat.attempts += 1
        if applied:
            stat.applies += 1
        stat.seconds += seconds

    def record_transform(self, name: str, seconds: float) -> None:
        stat = self.transforms.get(name)
        if stat is None:
            stat = self.transforms[name] = TimedStat()
        stat.count += 1
        stat.seconds += seconds
        self._h_transform_seconds.observe(seconds)

    def record_pass(self, name: str, seconds: float) -> None:
        stat = self.passes.get(name)
        if stat is None:
            stat = self.passes[name] = TimedStat()
        stat.count += 1
        stat.seconds += seconds

    def record_worklist_push(self, depth: int) -> None:
        self.worklist.pushes += 1
        if depth > self.worklist.max_depth:
            self.worklist.max_depth = depth

    def record_worklist_seed(self, depth: int) -> None:
        self.worklist.pushes += depth
        if depth > self.worklist.max_depth:
            self.worklist.max_depth = depth

    def record_worklist_pop(self) -> None:
        self.worklist.pops += 1

    def record_driver_run(self) -> None:
        self.worklist.runs += 1

    def record_invalidation(self, handles: int) -> None:
        self.invalidation.events += 1
        self.invalidation.handles_invalidated += handles

    def record_service_job(self, status: str, seconds: float,
                           cache_hit: bool) -> None:
        service = self.service
        service.jobs += 1
        service.job_seconds += seconds
        if seconds > service.max_job_seconds:
            service.max_job_seconds = seconds
        service.jobs_by_status[status] = (
            service.jobs_by_status.get(status, 0) + 1
        )
        if cache_hit:
            service.cache_hits += 1
        else:
            service.cache_misses += 1
        registry = self.registry
        registry.counter("service.jobs").inc()
        registry.counter(f"service.jobs_by_status.{status}").inc()
        registry.counter(
            "service.cache_hits" if cache_hit else "service.cache_misses"
        ).inc()
        self._h_job_seconds.observe(seconds)

    def record_queue_depth(self, depth: int) -> None:
        """One queue-depth sample. The frontier samples at *both*
        enqueue and dequeue — one-sided (enqueue-only) sampling sees
        every burst at its peak and never the drain, skewing the mean
        upward under bursty admission."""
        service = self.service
        service.queue_samples += 1
        service.queue_depth_sum += depth
        if depth > service.max_queue_depth:
            service.max_queue_depth = depth
        self._h_queue_depth.observe(depth)
        self._g_queue_depth.set(depth)

    def record_worker_restart(self) -> None:
        self.service.worker_restarts += 1
        self.registry.counter("service.worker_restarts").inc()

    def record_retry(self, backoff_seconds: float = 0.0) -> None:
        self.resilience.retries += 1
        self.resilience.backoff_seconds += backoff_seconds
        self.registry.counter("resilience.retries").inc()
        self.registry.counter("resilience.backoff_seconds").inc(
            backoff_seconds
        )

    def record_quarantine(self) -> None:
        self.resilience.quarantined += 1
        self.registry.counter("resilience.quarantined").inc()

    def record_pool_degradation(self) -> None:
        self.resilience.pool_degradations += 1
        self.registry.counter("resilience.pool_degradations").inc()

    @contextmanager
    def time_pass(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record_pass(name, time.perf_counter() - start)

    def reset(self) -> None:
        self.__init__()

    # -- reporting ----------------------------------------------------------

    def render(self) -> str:
        """A `-mlir-timing`-style text report of everything recorded."""
        bar = "===" + "-" * 70 + "==="
        lines: List[str] = [bar, "  ... Transform execution timing report ...",
                            bar]

        if self.transforms:
            total = sum(s.seconds for s in self.transforms.values())
            lines.append(f"  Transform ops ({total * 1e3:.3f} ms total)")
            lines.append(f"    {'wall (ms)':>10s}  {'count':>7s}  name")
            for name, stat in sorted(self.transforms.items(),
                                     key=lambda kv: -kv[1].seconds):
                lines.append(
                    f"    {stat.seconds * 1e3:10.3f}  {stat.count:7d}  {name}"
                )
            lines.append("")

        if self.patterns:
            total = sum(s.seconds for s in self.patterns.values())
            lines.append(f"  Patterns ({total * 1e3:.3f} ms total)")
            lines.append(
                f"    {'wall (ms)':>10s}  {'applied':>8s}  "
                f"{'attempts':>8s}  pattern"
            )
            for label, stat in sorted(self.patterns.items(),
                                      key=lambda kv: -kv[1].seconds):
                lines.append(
                    f"    {stat.seconds * 1e3:10.3f}  {stat.applies:8d}  "
                    f"{stat.attempts:8d}  {label}"
                )
            lines.append("")

        if self.passes:
            total = sum(s.seconds for s in self.passes.values())
            lines.append(f"  Passes ({total * 1e3:.3f} ms total)")
            lines.append(f"    {'wall (ms)':>10s}  {'count':>7s}  pass")
            for name, stat in sorted(self.passes.items(),
                                     key=lambda kv: -kv[1].seconds):
                lines.append(
                    f"    {stat.seconds * 1e3:10.3f}  {stat.count:7d}  {name}"
                )
            lines.append("")

        if self.worklist.pushes or self.worklist.runs:
            lines.append("  Greedy-driver worklist")
            lines.append(
                f"    runs: {self.worklist.runs}  "
                f"pushes: {self.worklist.pushes}  "
                f"pops: {self.worklist.pops}  "
                f"max depth: {self.worklist.max_depth}"
            )
            lines.append("")

        if self.invalidation.events:
            lines.append("  Handle invalidation")
            lines.append(
                f"    consume events: {self.invalidation.events}  "
                f"handles invalidated: "
                f"{self.invalidation.handles_invalidated}  "
                f"mean fan-out: {self.invalidation.mean_fanout:.2f}"
            )
            lines.append("")

        service = self.service
        if service.jobs or service.queue_samples:
            lines.append("  Compile service")
            by_status = "  ".join(
                f"{status}: {count}"
                for status, count in sorted(service.jobs_by_status.items())
            )
            lines.append(
                f"    jobs: {service.jobs}  "
                f"mean wall: {service.mean_job_seconds * 1e3:.3f} ms  "
                f"max wall: {service.max_job_seconds * 1e3:.3f} ms"
            )
            if by_status:
                lines.append(f"    by status: {by_status}")
            lines.append(
                f"    cache hit rate: {service.hit_rate:.1%}  "
                f"(hits: {service.cache_hits}  "
                f"misses: {service.cache_misses})  "
                f"worker restarts: {service.worker_restarts}"
            )
            if service.queue_samples:
                lines.append(
                    f"    queue depth: mean "
                    f"{service.mean_queue_depth:.2f}  "
                    f"max {service.max_queue_depth}  "
                    f"(samples: {service.queue_samples})"
                )
            lines.append("")

        resilience = self.resilience
        if resilience.any:
            lines.append("  Resilience")
            lines.append(
                f"    retries: {resilience.retries}  "
                f"(backoff: {resilience.backoff_seconds * 1e3:.3f} ms)  "
                f"quarantined: {resilience.quarantined}  "
                f"pool degradations: {resilience.pool_degradations}"
            )
            lines.append("")

        digests = self.digest_counters()
        if any(digests.values()):
            hits = digests["hash_hits"]
            recomputes = digests["hash_recomputes"]
            total = hits + recomputes
            rate = hits / total if total else 0.0
            lines.append("  Structural hashing")
            lines.append(
                f"    memo hit rate: {rate:.1%}  "
                f"(hits: {hits}  recomputes: {recomputes})  "
                f"invalidations: {digests['hash_invalidations']}"
            )
            lines.append("")

        for name, renderer in self._renderers.items():
            extra = renderer()
            if extra:
                lines.extend(extra)
                lines.append("")

        if len(lines) == 3:
            lines.append("  (nothing recorded)")
        return "\n".join(lines).rstrip()

    def to_json(self) -> Dict[str, object]:
        """Machine-readable dump of every instrument (plain dicts and
        numbers, ready for ``json.dump``).

        Driven by the section registry: every section registered via
        :meth:`add_section` — built-in or added after construction —
        serializes. (Previously each section was hand-listed here, so
        a newly grown instrument could be silently omitted from
        reports until someone remembered to extend this method.)
        """
        data: Dict[str, object] = {"schema_version": self.SCHEMA_VERSION}
        for name, serialize in self._sections.items():
            data[name] = serialize()
        return data

    def registry_snapshot(self) -> Dict[str, object]:
        """The unified, versioned metrics snapshot.

        Service-level distributions (job wall seconds, queue depth,
        per-transform-op seconds) and resilience counters are recorded
        into the registry live; the remaining scalar sections are
        synced here, so the returned
        :meth:`~repro.observability.metrics.MetricsRegistry.snapshot`
        is the complete, single-schema view of everything this
        profiler knows.
        """
        registry = self.registry
        registry.set_section("worklist", {
            "runs": self.worklist.runs,
            "pushes": self.worklist.pushes,
            "pops": self.worklist.pops,
            "max_depth": self.worklist.max_depth,
        })
        registry.set_section("invalidation", {
            "events": self.invalidation.events,
            "handles_invalidated": self.invalidation.handles_invalidated,
            "mean_fanout": self.invalidation.mean_fanout,
        })
        registry.set_section("rewrite", {
            "pattern_attempts":
                sum(s.attempts for s in self.patterns.values()),
            "pattern_applies":
                sum(s.applies for s in self.patterns.values()),
            # float() pins the empty-sum (int 0) to the gauge kind.
            "pattern_seconds":
                float(sum(s.seconds for s in self.patterns.values())),
        })
        registry.set_section("passes", {
            "runs": sum(s.count for s in self.passes.values()),
            "seconds":
                float(sum(s.seconds for s in self.passes.values())),
        })
        registry.set_section("interpreter", {
            "transforms_executed":
                sum(s.count for s in self.transforms.values()),
        })
        registry.set_section("service", {
            "max_job_seconds": self.service.max_job_seconds,
            # Floats so these land as gauges (point-in-time values),
            # not counters.
            "max_queue_depth": float(self.service.max_queue_depth),
            "queue_samples": self.service.queue_samples,
            "cache_hit_rate": self.service.hit_rate,
        })
        registry.set_section("hashing", self.digest_counters())
        return registry.snapshot()
