"""Observability for the transform hot paths (PR 1).

:class:`Profiler` collects per-pattern, per-transform-op and per-pass
wall time plus worklist and invalidation counters, and renders them as
a ``-mlir-timing``-style text report. See README "Profiling & timing
reports".
"""

from .profiler import (
    InvalidationStats,
    PatternStat,
    Profiler,
    ServiceStats,
    TimedStat,
    WorklistStats,
)

__all__ = [
    "InvalidationStats",
    "PatternStat",
    "Profiler",
    "ServiceStats",
    "TimedStat",
    "WorklistStats",
]
