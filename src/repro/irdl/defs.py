"""IRDL definitions: constraints, operand/result/attribute declarations.

An :class:`OperationDef` is a declarative specification from which a
verifier is *generated* (:func:`verify_op`) — mirroring IRDL's ability
to auto-generate constraint verifiers, which the paper leverages for
dynamic pre-/post-condition checking (§3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..ir.attributes import Attribute, DenseIntAttr, IntegerAttr
from ..ir.core import Operation
from ..ir.types import Type

# ---------------------------------------------------------------------------
# Constraints
# ---------------------------------------------------------------------------


class TypeConstraint:
    """Constrains the type of an operand or result."""

    def check(self, type: Type) -> Optional[str]:
        """Return a violation message, or None when satisfied."""
        raise NotImplementedError


class AnyType(TypeConstraint):
    def check(self, type: Type) -> Optional[str]:
        return None

    def __repr__(self) -> str:
        return "AnyType"


@dataclass
class TypeNameConstraint(TypeConstraint):
    """The type's class name must match (e.g. ``MemRefType``)."""

    class_name: str

    def check(self, type: Type) -> Optional[str]:
        if type.__class__.__name__ != self.class_name:
            return (
                f"expected {self.class_name}, got {type.__class__.__name__}"
            )
        return None


class AttrConstraint:
    """Constrains an attribute value."""

    def check(self, attr: Attribute) -> Optional[str]:
        raise NotImplementedError


class AnyAttr(AttrConstraint):
    def check(self, attr: Attribute) -> Optional[str]:
        return None


@dataclass
class IntAttrConstraint(AttrConstraint):
    """An integer attribute, optionally bounded."""

    min_value: Optional[int] = None
    max_value: Optional[int] = None

    def check(self, attr: Attribute) -> Optional[str]:
        if not isinstance(attr, IntegerAttr):
            return f"expected an integer attribute, got {attr!r}"
        if self.min_value is not None and attr.value < self.min_value:
            return f"value {attr.value} below minimum {self.min_value}"
        if self.max_value is not None and attr.value > self.max_value:
            return f"value {attr.value} above maximum {self.max_value}"
        return None


@dataclass
class DenseCountConstraint(AttrConstraint):
    """Constrains how many entries of a dense array satisfy a predicate.

    Used to express Fig. 3's highlighted cardinality-zero constraint:
    e.g. "the number of DYNAMIC entries must be exactly 0".
    """

    predicate: Callable[[int], bool]
    expected_count: int
    description: str = "constrained entries"

    def check(self, attr: Attribute) -> Optional[str]:
        if not isinstance(attr, DenseIntAttr):
            return f"expected a dense integer attribute, got {attr!r}"
        count = sum(1 for v in attr.values if self.predicate(v))
        if count != self.expected_count:
            return (
                f"expected {self.expected_count} {self.description}, "
                f"found {count}"
            )
        return None


# ---------------------------------------------------------------------------
# Cardinality of variadic segments
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Cardinality:
    """How many operands a variadic segment may bind."""

    min: int = 0
    max: Optional[int] = None  # None = unbounded

    @staticmethod
    def exactly(n: int) -> "Cardinality":
        return Cardinality(n, n)

    @staticmethod
    def zero() -> "Cardinality":
        """The Fig. 3 highlight: a variadic segment pinned to cardinality 0."""
        return Cardinality(0, 0)

    def check(self, count: int) -> Optional[str]:
        if count < self.min:
            return f"expected at least {self.min} operands, got {count}"
        if self.max is not None and count > self.max:
            return f"expected at most {self.max} operands, got {count}"
        return None


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass
class OperandDef:
    name: str
    constraint: TypeConstraint = field(default_factory=AnyType)
    variadic: bool = False
    cardinality: Cardinality = field(default_factory=Cardinality)


@dataclass
class ResultDef:
    name: str
    constraint: TypeConstraint = field(default_factory=AnyType)
    variadic: bool = False


@dataclass
class AttributeDef:
    name: str
    constraint: AttrConstraint = field(default_factory=AnyAttr)
    optional: bool = False


@dataclass
class ConstraintViolation:
    """A single generated-verifier failure."""

    op_name: str
    message: str

    def __str__(self) -> str:
        return f"'{self.op_name}': {self.message}"


@dataclass
class OperationDef:
    """A declarative operation specification.

    ``spec_name`` is the name used in pre-/post-conditions; for
    constrained copies of existing ops it carries the ``.constr``
    suffix (e.g. ``memref.subview.constr``) while ``op_name`` stays the
    real op name, matching the paper's "we do not actually introduce a
    new operation".
    """

    op_name: str
    operands: List[OperandDef] = field(default_factory=list)
    results: List[ResultDef] = field(default_factory=list)
    attributes: List[AttributeDef] = field(default_factory=list)
    spec_name: Optional[str] = None
    #: Extra Python-level predicate (IRDL's CPPConstraint escape hatch).
    extra_constraint: Optional[Callable[[Operation], Optional[str]]] = None

    @property
    def name(self) -> str:
        return self.spec_name or self.op_name

    def constrained_copy(self, spec_suffix: str = "constr",
                         **overrides) -> "OperationDef":
        """A copy with some declarations replaced (Fig. 3 highlights)."""
        new_operands = [
            overrides.get(operand.name, operand) for operand in self.operands
        ]
        new_attributes = [
            overrides.get(attr.name, attr) for attr in self.attributes
        ]
        return OperationDef(
            op_name=self.op_name,
            operands=new_operands,
            results=list(self.results),
            attributes=new_attributes,
            spec_name=f"{self.op_name}.{spec_suffix}",
            extra_constraint=overrides.get(
                "extra_constraint", self.extra_constraint
            ),
        )


def verify_op(op: Operation, definition: OperationDef) -> List[ConstraintViolation]:
    """The generated verifier: check ``op`` against ``definition``."""
    violations: List[ConstraintViolation] = []

    def note(message: str) -> None:
        violations.append(ConstraintViolation(definition.name, message))

    # Operand segmentation: fixed operands first, then variadic segments
    # greedily in declaration order, with cardinality bounds.
    fixed = [o for o in definition.operands if not o.variadic]
    variadic = [o for o in definition.operands if o.variadic]
    actual = op.operands
    if len(actual) < len(fixed):
        note(
            f"expected at least {len(fixed)} operands, got {len(actual)}"
        )
        return violations
    for operand_def, value in zip(fixed, actual):
        violation = operand_def.constraint.check(value.type)
        if violation:
            note(f"operand '{operand_def.name}': {violation}")
    remaining = len(actual) - len(fixed)
    if variadic:
        # Distribute remaining operands: all but the last segment take
        # their minimum; the last takes the rest.
        for segment in variadic[:-1]:
            count = segment.cardinality.min
            violation = segment.cardinality.check(count)
            if violation:
                note(f"operand segment '{segment.name}': {violation}")
            remaining -= count
        violation = variadic[-1].cardinality.check(remaining)
        if violation:
            note(f"operand segment '{variadic[-1].name}': {violation}")
    elif remaining:
        note(f"unexpected extra operands: {remaining}")

    for result_def, result in zip(definition.results, op.results):
        violation = result_def.constraint.check(result.type)
        if violation:
            note(f"result '{result_def.name}': {violation}")

    for attr_def in definition.attributes:
        attr = op.attr(attr_def.name)
        if attr is None:
            if not attr_def.optional:
                note(f"missing required attribute '{attr_def.name}'")
            continue
        violation = attr_def.constraint.check(attr)
        if violation:
            note(f"attribute '{attr_def.name}': {violation}")

    if definition.extra_constraint is not None:
        violation = definition.extra_constraint(op)
        if violation:
            note(violation)
    return violations
