"""IRDL: declarative IR definition with generated constraint verifiers.

A reduced model of the IR Definition Language (Fehr et al., PLDI 2022)
as used by the paper (§3.3): operation definitions carry typed operand/
result/attribute declarations with *constraints*, and verifiers are
generated from those declarations. Constrained *copies* of existing op
definitions (e.g. ``memref.subview.constr`` with zero-cardinality
offset/size/stride operands, Fig. 3) express advanced pre- and
post-conditions of transforms without introducing new ops.
"""

from .defs import (
    AnyAttr,
    AnyType,
    AttributeDef,
    Cardinality,
    ConstraintViolation,
    IntAttrConstraint,
    OperandDef,
    OperationDef,
    ResultDef,
    TypeNameConstraint,
    verify_op,
)
from .library import (
    IRDL_REGISTRY,
    MEMREF_SUBVIEW,
    MEMREF_SUBVIEW_CONSTRAINED,
    lookup_def,
    register_def,
)

__all__ = [
    "AnyAttr",
    "AnyType",
    "AttributeDef",
    "Cardinality",
    "ConstraintViolation",
    "IRDL_REGISTRY",
    "IntAttrConstraint",
    "MEMREF_SUBVIEW",
    "MEMREF_SUBVIEW_CONSTRAINED",
    "OperandDef",
    "OperationDef",
    "ResultDef",
    "TypeNameConstraint",
    "lookup_def",
    "register_def",
    "verify_op",
]
