"""IRDL definitions for the ops the paper's conditions reference.

The central pair is Fig. 3: the ``memref.subview`` definition and its
*constrained copy* ``memref.subview.constr`` whose variadic offset/size/
stride operand segments are pinned to cardinality zero — the
post-condition of ``expand-strided-metadata`` (Fig. 4).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.core import Operation
from .defs import (
    AttributeDef,
    Cardinality,
    ConstraintViolation,
    OperandDef,
    OperationDef,
    ResultDef,
    TypeNameConstraint,
    verify_op,
)

#: Registry of IRDL definitions keyed by spec name.
IRDL_REGISTRY: Dict[str, OperationDef] = {}


def register_def(definition: OperationDef) -> OperationDef:
    IRDL_REGISTRY[definition.name] = definition
    return definition


def lookup_def(spec_name: str) -> Optional[OperationDef]:
    return IRDL_REGISTRY.get(spec_name)


def _check_subview_semantics(op: Operation) -> Optional[str]:
    """IRDL's CPPConstraint escape hatch (Fig. 3's checkMemrefConstraints)."""
    offsets = op.attr("static_offsets")
    sizes = op.attr("static_sizes")
    strides = op.attr("static_strides")
    if offsets is None or sizes is None or strides is None:
        return "subview requires static_offsets/static_sizes/static_strides"
    if not (len(offsets.values) == len(sizes.values) == len(strides.values)):  # type: ignore[union-attr]
        return "offset/size/stride ranks differ"
    return None


#: Fig. 3 (plain): memref.subview with unbounded dynamic operand segments.
MEMREF_SUBVIEW = register_def(
    OperationDef(
        op_name="memref.subview",
        operands=[
            OperandDef("input", TypeNameConstraint("MemRefType")),
            OperandDef("offset", variadic=True),
            OperandDef("sizes", variadic=True),
            OperandDef("strides", variadic=True),
        ],
        results=[ResultDef("view", TypeNameConstraint("MemRefType"))],
        attributes=[
            AttributeDef("static_offsets"),
            AttributeDef("static_sizes"),
            AttributeDef("static_strides"),
        ],
        extra_constraint=_check_subview_semantics,
    )
)


def _check_trivial_offsets(op: Operation) -> Optional[str]:
    """All static offsets zero and strides one: the 'trivial view' shape."""
    offsets = op.attr("static_offsets")
    strides = op.attr("static_strides")
    if offsets is not None and any(v != 0 for v in offsets.values):  # type: ignore[union-attr]
        return "constrained subview requires all-zero offsets"
    if strides is not None and any(v != 1 for v in strides.values):  # type: ignore[union-attr]
        return "constrained subview requires unit strides"
    return None


#: Fig. 3 (highlighted): the constrained copy pinning the dynamic
#: offset/size/stride segments to cardinality zero. This is a *pseudo
#: operation* used only in pre-/post-conditions — no new op is
#: registered for it.
MEMREF_SUBVIEW_CONSTRAINED = register_def(
    MEMREF_SUBVIEW.constrained_copy(
        offset=OperandDef("offset", variadic=True,
                          cardinality=Cardinality.zero()),
        sizes=OperandDef("sizes", variadic=True,
                         cardinality=Cardinality.zero()),
        strides=OperandDef("strides", variadic=True,
                           cardinality=Cardinality.zero()),
        extra_constraint=_check_trivial_offsets,
    )
)


register_def(
    OperationDef(
        op_name="memref.load",
        operands=[
            OperandDef("memref", TypeNameConstraint("MemRefType")),
            OperandDef("indices", variadic=True),
        ],
        results=[ResultDef("value")],
    )
)

register_def(
    OperationDef(
        op_name="memref.store",
        operands=[
            OperandDef("value"),
            OperandDef("memref", TypeNameConstraint("MemRefType")),
            OperandDef("indices", variadic=True),
        ],
    )
)

register_def(
    OperationDef(
        op_name="affine.apply",
        operands=[OperandDef("operands", variadic=True)],
        results=[ResultDef("result", TypeNameConstraint("IndexType"))],
        attributes=[AttributeDef("map")],
    )
)


def verify_against_spec(op: Operation,
                        spec_name: str) -> List[ConstraintViolation]:
    """Verify ``op`` against a registered spec; unknown specs pass."""
    definition = lookup_def(spec_name)
    if definition is None:
        return []
    return verify_op(op, definition)
