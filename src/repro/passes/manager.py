"""The pass manager: registration, pipelines, timing.

Passes are registered by name in :data:`PASS_REGISTRY` and assembled
into pipelines either programmatically or from the textual form used on
MLIR's command line (``pass-a,pass-b``). The manager records per-pass
wall-clock timing — the measurement instrument for the Table-1
compile-time study.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Type as PyType, Union

from ..ir.core import Operation

#: Global pass registry: name -> pass class.
PASS_REGISTRY: Dict[str, PyType["Pass"]] = {}


def register_pass(cls: PyType["Pass"]) -> PyType["Pass"]:
    """Class decorator registering a pass under its ``NAME``."""
    if not getattr(cls, "NAME", ""):
        raise ValueError(f"{cls.__name__} lacks a NAME")
    PASS_REGISTRY[cls.NAME] = cls
    return cls


class Pass:
    """Base class of all passes. Subclasses mutate the op in ``run``."""

    NAME: str = ""
    #: One-line summary shown in ``--help``-style listings.
    DESCRIPTION: str = ""

    def __init__(self, **options) -> None:
        self.options = options

    def run(self, op: Operation) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<pass {self.NAME}>"


class FunctionPass(Pass):
    """A pass that runs independently on every ``func.func``."""

    def run(self, op: Operation) -> None:
        if op.name == "func.func":
            self.run_on_function(op)
            return
        for func_op in list(op.walk_ops("func.func")):
            self.run_on_function(func_op)

    def run_on_function(self, func_op: Operation) -> None:
        raise NotImplementedError


@dataclass
class PassTiming:
    """Wall-clock timing of one pipeline execution."""

    per_pass: List[tuple] = field(default_factory=list)  # (name, seconds)

    @property
    def total(self) -> float:
        return sum(seconds for _, seconds in self.per_pass)

    def render(self) -> str:
        lines = ["===- Pass execution timing -==="]
        for name, seconds in self.per_pass:
            lines.append(f"  {seconds * 1e3:9.3f} ms  {name}")
        lines.append(f"  {self.total * 1e3:9.3f} ms  total")
        return "\n".join(lines)


class PassManager:
    """Runs a sequence of passes over a module."""

    def __init__(self, passes: Sequence[Union[str, Pass]] = (),
                 verify_each: bool = False):
        self.passes: List[Pass] = []
        self.verify_each = verify_each
        for entry in passes:
            self.add(entry)

    def add(self, entry: Union[str, Pass], **options) -> "PassManager":
        """Append a pass (by instance or registered name)."""
        if isinstance(entry, Pass):
            self.passes.append(entry)
            return self
        cls = PASS_REGISTRY.get(entry)
        if cls is None:
            raise ValueError(f"unknown pass: {entry!r}")
        self.passes.append(cls(**options))
        return self

    def run(self, module: Operation, profiler=None) -> PassTiming:
        """Run the pipeline, returning per-pass timing.

        ``profiler`` (a :class:`repro.profiling.Profiler`) additionally
        records each pass into the shared timing report.
        """
        timing = PassTiming()
        for pass_ in self.passes:
            # Expose the profiler to passes that instrument their own
            # internals (e.g. canonicalize's greedy driver), unless the
            # pass was constructed with an explicit one.
            lent_profiler = (
                profiler is not None and "profiler" not in pass_.options
            )
            if lent_profiler:
                pass_.options["profiler"] = profiler
            start = time.perf_counter()
            try:
                pass_.run(module)
            finally:
                if lent_profiler:
                    del pass_.options["profiler"]
            elapsed = time.perf_counter() - start
            timing.per_pass.append((pass_.NAME, elapsed))
            if profiler is not None:
                profiler.record_pass(pass_.NAME, elapsed)
            if self.verify_each:
                module.verify()
        return timing

    def pipeline_string(self) -> str:
        return ",".join(p.NAME for p in self.passes)


def parse_pipeline(text: str) -> PassManager:
    """Parse ``"pass-a,pass-b(opt=1)"`` into a PassManager."""
    manager = PassManager()
    for chunk in _split_pipeline(text):
        chunk = chunk.strip()
        if not chunk:
            continue
        options: Dict[str, object] = {}
        name = chunk
        if "(" in chunk:
            name, _, option_text = chunk.partition("(")
            option_text = option_text.rstrip(")")
            for pair in option_text.split(","):
                if not pair.strip():
                    continue
                key, _, raw = pair.partition("=")
                value: object = raw.strip()
                if isinstance(value, str) and value.isdigit():
                    value = int(value)
                options[key.strip()] = value
        manager.add(name, **options)
    return manager


def _split_pipeline(text: str) -> List[str]:
    """Split on commas not nested in parentheses."""
    chunks: List[str] = []
    depth = 0
    current = ""
    for char in text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "," and depth == 0:
            chunks.append(current)
            current = ""
        else:
            current += char
    if current:
        chunks.append(current)
    return chunks
