"""The TOSA -> Linalg lowering pipeline of the Table-1 study.

The paper measures the compile time of the standard MLIR pipeline that
takes TensorFlow models converted to TOSA down to the Linalg dialect,
once driven by the native pass manager and once by an equivalent
transform script. These passes perform the same *kind* of work:
decompositions, shape massaging, and conversion of every TOSA op into
linalg/arith/tensor ops with real region bodies.
"""

from __future__ import annotations

from typing import Optional

from ..ir.builder import Builder
from ..ir.core import Block, Operation, Value
from ..ir.types import ShapedType, TensorType
from ..rewrite.conversion import ConversionTarget, apply_conversion
from ..rewrite.greedy import FrozenPatternSet, apply_patterns_greedily
from ..rewrite.pattern import PatternRewriter, pattern
from .manager import Pass, PassManager, register_pass

# ---------------------------------------------------------------------------
# tosa-optional-decompositions
# ---------------------------------------------------------------------------


def _result_tensor(op: Operation) -> TensorType:
    result_type = op.results[0].type
    assert isinstance(result_type, TensorType)
    return result_type


@pattern("tosa.softmax", label="decompose-softmax")
def decompose_softmax(op: Operation, rewriter: PatternRewriter) -> bool:
    """softmax(x) = exp(x) / sum(exp(x)) along the last dimension."""
    result_type = _result_tensor(op)
    operand = op.operand(0)
    rewriter.set_insertion_point_before(op)
    exp = rewriter.create(
        "tosa.exp", operands=[operand], result_types=[result_type]
    )
    reduced_shape = (*result_type.shape[:-1], 1)
    reduced_type = TensorType(reduced_shape, result_type.element_type)
    total = rewriter.create(
        "tosa.reduce_sum",
        operands=[exp.result],
        result_types=[reduced_type],
        attributes={"axis": result_type.rank - 1},
    )
    recip = rewriter.create(
        "tosa.reciprocal", operands=[total.result],
        result_types=[reduced_type],
    )
    out = rewriter.create(
        "tosa.mul",
        operands=[exp.result, recip.result],
        result_types=[result_type],
    )
    rewriter.replace_op(op, out.results)
    return True


@pattern("tosa.fully_connected", label="decompose-fully-connected")
def decompose_fully_connected(op: Operation,
                              rewriter: PatternRewriter) -> bool:
    """fully_connected(x, w, b) = matmul(x, transpose(w)) + b."""
    result_type = _result_tensor(op)
    data, weights = op.operand(0), op.operand(1)
    rewriter.set_insertion_point_before(op)
    weights_type = weights.type
    assert isinstance(weights_type, TensorType)
    transposed_type = TensorType(
        tuple(reversed(weights_type.shape)), weights_type.element_type
    )
    transposed = rewriter.create(
        "tosa.transpose",
        operands=[weights],
        result_types=[transposed_type],
        attributes={"perms": [1, 0]},
    )
    matmul = rewriter.create(
        "tosa.matmul",
        operands=[data, transposed.result],
        result_types=[result_type],
    )
    current = matmul.result
    if op.num_operands > 2:
        current = rewriter.create(
            "tosa.add",
            operands=[current, op.operand(2)],
            result_types=[result_type],
        ).result
    rewriter.replace_op(op, [current])
    return True


@pattern("tosa.transpose_conv2d", label="decompose-transpose-conv")
def decompose_transpose_conv(op: Operation,
                             rewriter: PatternRewriter) -> bool:
    """transpose_conv2d -> reverse kernel + pad input + regular conv2d."""
    result_type = _result_tensor(op)
    rewriter.set_insertion_point_before(op)
    kernel = op.operand(1)
    reversed_kernel = rewriter.create(
        "tosa.reverse", operands=[kernel], result_types=[kernel.type],
        attributes={"axis": 1},
    )
    padded = rewriter.create(
        "tosa.pad",
        operands=[op.operand(0)],
        result_types=[op.operand(0).type],
    )
    conv = rewriter.create(
        "tosa.conv2d",
        operands=[padded.result, reversed_kernel.result,
                  *op.operands[2:]],
        result_types=[result_type],
    )
    rewriter.replace_op(op, conv.results)
    return True


@register_pass
class TosaOptionalDecompositionsPass(Pass):
    NAME = "tosa-optional-decompositions"
    DESCRIPTION = "decompose composite TOSA ops into primitives"
    PRECONDITIONS = {"tosa.softmax", "tosa.fully_connected",
                     "tosa.transpose_conv2d"}
    POSTCONDITIONS = {"tosa.exp", "tosa.reduce_sum", "tosa.reciprocal",
                      "tosa.mul", "tosa.transpose", "tosa.matmul",
                      "tosa.add", "tosa.reverse", "tosa.pad", "tosa.conv2d"}

    #: Frozen once: the same three patterns drive every module.
    _FROZEN: Optional[FrozenPatternSet] = None

    def run(self, op: Operation) -> None:
        if TosaOptionalDecompositionsPass._FROZEN is None:
            TosaOptionalDecompositionsPass._FROZEN = FrozenPatternSet(
                [decompose_softmax, decompose_fully_connected,
                 decompose_transpose_conv]
            )
        apply_patterns_greedily(op, TosaOptionalDecompositionsPass._FROZEN)


# ---------------------------------------------------------------------------
# tosa-infer-shapes
# ---------------------------------------------------------------------------


@register_pass
class TosaInferShapesPass(Pass):
    """Propagate static shapes through elementwise TOSA ops.

    Real MLIR refines unranked/dynamic shapes; our graphs are static, so
    this validates element counts and records per-op flop estimates used
    later by the cost model (the traversal work is what Table 1 times).
    """

    NAME = "tosa-infer-shapes"
    DESCRIPTION = "infer and validate TOSA result shapes"
    PRECONDITIONS = {"tosa.*"}
    POSTCONDITIONS: set = set()

    def run(self, op: Operation) -> None:
        for tosa_op in op.walk():
            if not tosa_op.name.startswith("tosa."):
                continue
            ranked = [
                operand.type
                for operand in tosa_op.operands
                if isinstance(operand.type, ShapedType)
            ]
            if not ranked or not tosa_op.results:
                continue
            result_type = tosa_op.results[0].type
            if isinstance(result_type, ShapedType):
                tosa_op.set_attr(
                    "inferred_elements", result_type.num_elements
                    if result_type.has_static_shape else -1
                )


# ---------------------------------------------------------------------------
# tosa-make-broadcastable
# ---------------------------------------------------------------------------


@register_pass
class TosaMakeBroadcastablePass(Pass):
    """Reshape lower-rank operands of binary ops to equal rank."""

    NAME = "tosa-make-broadcastable"
    DESCRIPTION = "insert reshapes so binary operands have equal rank"
    PRECONDITIONS = {"tosa.add", "tosa.sub", "tosa.mul", "tosa.maximum",
                     "tosa.minimum", "tosa.pow"}
    POSTCONDITIONS = {"tosa.reshape"}

    _BINARY = {"tosa.add", "tosa.sub", "tosa.mul", "tosa.maximum",
               "tosa.minimum", "tosa.pow"}

    def run(self, op: Operation) -> None:
        rewriter = PatternRewriter()
        for binary in list(op.walk()):
            if binary.name not in self._BINARY or binary.parent is None:
                continue
            lhs_type, rhs_type = (
                binary.operand(0).type, binary.operand(1).type
            )
            if not (isinstance(lhs_type, TensorType)
                    and isinstance(rhs_type, TensorType)):
                continue
            if lhs_type.rank == rhs_type.rank:
                continue
            low_index = 0 if lhs_type.rank < rhs_type.rank else 1
            low = binary.operand(low_index)
            low_type = low.type
            high_type = rhs_type if low_index == 0 else lhs_type
            assert isinstance(low_type, TensorType)
            padded_shape = (
                (1,) * (high_type.rank - low_type.rank) + low_type.shape
            )
            rewriter.set_insertion_point_before(binary)
            reshaped = rewriter.create(
                "tosa.reshape",
                operands=[low],
                result_types=[
                    TensorType(padded_shape, low_type.element_type)
                ],
                attributes={"new_shape": list(padded_shape)},
            )
            binary.set_operand(low_index, reshaped.result)


# ---------------------------------------------------------------------------
# tosa-to-linalg-named
# ---------------------------------------------------------------------------


def _empty_init(rewriter: PatternRewriter, result_type: TensorType) -> Value:
    init = rewriter.create(
        "tensor.empty", result_types=[result_type]
    )
    zero = rewriter.create(
        "arith.constant",
        result_types=[result_type.element_type],
        attributes={"value": 0.0},
    )
    filled = rewriter.create(
        "linalg.fill",
        operands=[zero.result, init.result],
        result_types=[result_type],
    )
    return filled.result


_NAMED_MAP = {
    "tosa.conv2d": "linalg.conv_2d_nhwc_hwcf",
    "tosa.depthwise_conv2d": "linalg.depthwise_conv_2d_nhwc_hwc",
    "tosa.matmul": "linalg.batch_matmul",
    "tosa.max_pool2d": "linalg.pooling_nhwc_max",
    "tosa.avg_pool2d": "linalg.pooling_nhwc_sum",
}


@register_pass
class TosaToLinalgNamedPass(Pass):
    NAME = "tosa-to-linalg-named"
    DESCRIPTION = "convert compute-heavy TOSA ops to named linalg ops"
    PRECONDITIONS = {"tosa.conv2d", "tosa.depthwise_conv2d", "tosa.matmul",
                     "tosa.max_pool2d", "tosa.avg_pool2d"}
    POSTCONDITIONS = {"linalg.conv_2d_nhwc_hwcf",
                      "linalg.depthwise_conv_2d_nhwc_hwc",
                      "linalg.batch_matmul", "linalg.pooling_nhwc_max",
                      "linalg.pooling_nhwc_sum", "linalg.fill",
                      "tensor.empty", "arith.constant"}

    def run(self, op: Operation) -> None:
        target = ConversionTarget()
        target.add_illegal_op(*_NAMED_MAP)
        target.add_legal_dialect("linalg", "tensor", "arith")

        @pattern(label="tosa-named-to-linalg")
        def convert(candidate: Operation, rewriter) -> bool:
            linalg_name = _NAMED_MAP.get(candidate.name)
            if linalg_name is None:
                return False
            result_type = _result_tensor(candidate)
            rewriter.set_insertion_point_before(candidate)
            init = _empty_init(rewriter, result_type)
            inputs = candidate.operands[:2]
            new_op = rewriter.create(
                linalg_name,
                operands=[*inputs, init],
                result_types=[result_type],
                attributes=dict(candidate.attributes),
            )
            rewriter.replace_op(candidate, new_op.results)
            return True

        apply_conversion(op, [convert], target)


# ---------------------------------------------------------------------------
# tosa-to-linalg (elementwise and reductions)
# ---------------------------------------------------------------------------

_ELEMENTWISE_BODY = {
    "tosa.add": "arith.addf",
    "tosa.sub": "arith.subf",
    "tosa.mul": "arith.mulf",
    "tosa.maximum": "arith.maximumf",
    "tosa.minimum": "arith.minimumf",
    "tosa.abs": "arith.maximumf",  # |x| via max(x, -x); simplified below
    "tosa.negate": "arith.subf",
    "tosa.exp": "arith.mulf",  # placeholder body op, real work is structure
    "tosa.log": "arith.addf",
    "tosa.rsqrt": "arith.divf",
    "tosa.reciprocal": "arith.divf",
    "tosa.sigmoid": "arith.addf",
    "tosa.tanh": "arith.mulf",
    "tosa.clamp": "arith.minimumf",
    "tosa.erf": "arith.addf",
    "tosa.floor": "arith.addf",
    "tosa.ceil": "arith.addf",
    "tosa.pow": "arith.mulf",
    "tosa.cast": "arith.addf",
    "tosa.rescale": "arith.mulf",
    "tosa.select": "arith.addf",
    "tosa.equal": "arith.subf",
    "tosa.greater": "arith.subf",
    "tosa.greater_equal": "arith.subf",
    "tosa.logical_and": "arith.mulf",
    "tosa.logical_or": "arith.addf",
    "tosa.sigmoid": "arith.addf",
    "tosa.table": "arith.addf",
}

_REDUCE_OPS = {"tosa.reduce_sum", "tosa.reduce_max", "tosa.reduce_min",
               "tosa.reduce_prod", "tosa.reduce_all", "tosa.reduce_any",
               "tosa.argmax"}


@register_pass
class TosaToLinalgPass(Pass):
    NAME = "tosa-to-linalg"
    DESCRIPTION = "convert elementwise/reduction TOSA ops to linalg.generic"
    PRECONDITIONS = {"tosa.*"}
    POSTCONDITIONS = {"linalg.generic", "linalg.reduce", "linalg.yield",
                      "linalg.transpose", "tensor.empty", "arith.addf",
                      "arith.subf", "arith.mulf", "arith.divf",
                      "arith.maximumf", "arith.minimumf", "arith.constant"}

    def run(self, op: Operation) -> None:
        target = ConversionTarget()
        target.add_illegal_op(*_ELEMENTWISE_BODY)
        target.add_illegal_op(*_REDUCE_OPS)
        target.add_illegal_op("tosa.transpose")
        target.add_legal_dialect("linalg", "tensor", "arith")

        @pattern(label="tosa-elementwise-to-linalg")
        def convert_elementwise(candidate: Operation, rewriter) -> bool:
            body_name = _ELEMENTWISE_BODY.get(candidate.name)
            if body_name is None:
                return False
            result_type = candidate.results[0].type
            if not isinstance(result_type, TensorType):
                return False
            rewriter.set_insertion_point_before(candidate)
            init = rewriter.create(
                "tensor.empty", result_types=[result_type]
            )
            generic = rewriter.create(
                "linalg.generic",
                operands=[*candidate.operands, init.result],
                result_types=[result_type],
                attributes={
                    "n_inputs": candidate.num_operands,
                    "iterator_types": ["parallel"] * result_type.rank,
                },
                regions=1,
            )
            element = result_type.element_type
            body = Block(
                [element] * (candidate.num_operands + 1)
            )
            generic.regions[0].add_block(body)
            body_builder = Builder.at_end(body)
            if candidate.num_operands >= 2:
                combined = body_builder.create(
                    body_name,
                    operands=[body.args[0], body.args[1]],
                    result_types=[element],
                ).result
            else:
                combined = body_builder.create(
                    body_name,
                    operands=[body.args[0], body.args[0]],
                    result_types=[element],
                ).result
            body_builder.create("linalg.yield", operands=[combined])
            rewriter.replace_op(candidate, generic.results)
            return True

        @pattern(label="tosa-reduce-to-linalg")
        def convert_reduce(candidate: Operation, rewriter) -> bool:
            if candidate.name not in _REDUCE_OPS:
                return False
            result_type = candidate.results[0].type
            rewriter.set_insertion_point_before(candidate)
            init = rewriter.create(
                "tensor.empty", result_types=[result_type]
            )
            reduce = rewriter.create(
                "linalg.reduce",
                operands=[candidate.operand(0), init.result],
                result_types=[result_type],
                attributes={"dimensions": [candidate.attr("axis") or 0]},
                regions=1,
            )
            element = (
                result_type.element_type
                if isinstance(result_type, TensorType)
                else result_type
            )
            body = Block([element, element])
            reduce.regions[0].add_block(body)
            body_builder = Builder.at_end(body)
            combiner = "arith.addf"
            if "max" in candidate.name:
                combiner = "arith.maximumf"
            elif "min" in candidate.name:
                combiner = "arith.minimumf"
            elif "prod" in candidate.name:
                combiner = "arith.mulf"
            combined = body_builder.create(
                combiner, operands=list(body.args), result_types=[element]
            )
            body_builder.create(
                "linalg.yield", operands=[combined.result]
            )
            rewriter.replace_op(candidate, reduce.results)
            return True

        @pattern("tosa.transpose", label="tosa-transpose-to-linalg")
        def convert_transpose(candidate: Operation, rewriter) -> bool:
            result_type = candidate.results[0].type
            rewriter.set_insertion_point_before(candidate)
            init = rewriter.create(
                "tensor.empty", result_types=[result_type]
            )
            new_op = rewriter.create(
                "linalg.transpose",
                operands=[candidate.operand(0), init.result],
                result_types=[result_type],
                attributes={"permutation": candidate.attr("perms")
                            or [1, 0]},
            )
            rewriter.replace_op(candidate, new_op.results)
            return True

        apply_conversion(
            op, [convert_elementwise, convert_reduce, convert_transpose],
            target,
        )


# ---------------------------------------------------------------------------
# tosa-to-arith / tosa-to-tensor
# ---------------------------------------------------------------------------


@register_pass
class TosaToArithPass(Pass):
    NAME = "tosa-to-arith"
    DESCRIPTION = "convert tosa.const to arith.constant"
    PRECONDITIONS = {"tosa.const"}
    POSTCONDITIONS = {"arith.constant"}

    def run(self, op: Operation) -> None:
        rewriter = PatternRewriter()
        for const in list(op.walk_ops("tosa.const")):
            if const.parent is None:
                continue
            rewriter.set_insertion_point_before(const)
            new_op = rewriter.create(
                "arith.constant",
                result_types=[const.results[0].type],
                attributes={"value": const.attr("value") or 0},
            )
            rewriter.replace_op(const, new_op.results)


_TENSOR_MAP = {
    "tosa.reshape": "tensor.reshape",
    "tosa.slice": "tensor.extract_slice",
    "tosa.concat": "tensor.concat",
    "tosa.pad": "tensor.pad",
    "tosa.tile": "tensor.concat",
    "tosa.reverse": "tensor.reshape",
    "tosa.gather": "tensor.extract_slice",
    "tosa.resize": "tensor.reshape",
}


@register_pass
class TosaToTensorPass(Pass):
    NAME = "tosa-to-tensor"
    DESCRIPTION = "convert TOSA data-movement ops to the tensor dialect"
    PRECONDITIONS = set(_TENSOR_MAP)
    POSTCONDITIONS = {"tensor.reshape", "tensor.extract_slice",
                      "tensor.concat", "tensor.pad"}

    def run(self, op: Operation) -> None:
        target = ConversionTarget()
        target.add_illegal_op(*_TENSOR_MAP)
        target.add_legal_dialect("tensor")

        @pattern(label="tosa-to-tensor")
        def convert(candidate: Operation, rewriter) -> bool:
            tensor_name = _TENSOR_MAP.get(candidate.name)
            if tensor_name is None:
                return False
            new_op = rewriter.create(
                tensor_name,
                operands=list(candidate.operands),
                result_types=[r.type for r in candidate.results],
                attributes=dict(candidate.attributes),
                regions=1 if tensor_name == "tensor.pad" else 0,
            )
            rewriter.replace_op(candidate, new_op.results)
            return True

        apply_conversion(op, [convert], target)


# ---------------------------------------------------------------------------
# The full pipeline
# ---------------------------------------------------------------------------

#: Pass names of the TOSA->Linalg pipeline, in order (Table 1 workload).
TOSA_TO_LINALG_PIPELINE = (
    "tosa-optional-decompositions",
    "canonicalize",
    "tosa-infer-shapes",
    "tosa-make-broadcastable",
    "tosa-to-linalg-named",
    "tosa-to-linalg",
    "tosa-to-arith",
    "tosa-to-tensor",
    "canonicalize",
    "cse",
)


def tosa_to_linalg_pipeline() -> PassManager:
    """The full TOSA->Linalg pipeline as a PassManager."""
    return PassManager(TOSA_TO_LINALG_PIPELINE)
