"""Progressive lowering passes (the Table-2 pipeline of the paper).

Seven passes take a mixed scf/arith/memref/func program down to the
LLVM dialect:

1. ``convert-scf-to-cf``       — structured control flow to branches
2. ``convert-arith-to-llvm``   — arithmetic to LLVM ops
3. ``convert-cf-to-llvm``      — branches to LLVM branches
4. ``convert-func-to-llvm``    — functions/calls/returns to LLVM
5. ``expand-strided-metadata`` — externalize non-trivial memref addressing
   (this is the pass that *introduces* ``affine.apply`` — the culprit of
   the case-study-2 pipeline failure)
6. ``finalize-memref-to-llvm`` — trivially-indexed memrefs to pointers
7. ``reconcile-unrealized-casts`` — cancel temporary casts, or fail with
   MLIR's exact error message

plus ``lower-affine``, the fix that legalizes the leaked affine ops.
"""

from __future__ import annotations

from typing import List, Optional

from ..ir.affine import AffineConstant, AffineDim, AffineExpr, AffineMap, AffineSymbol
from ..ir.attributes import DenseIntAttr, SymbolRefAttr
from ..ir.builder import Builder
from ..ir.core import Block, Operation, Value
from ..ir.types import (
    DYNAMIC,
    I64,
    IndexType,
    LLVMPointerType,
    MemRefType,
    Type,
)
from ..rewrite.conversion import (
    ConversionError,
    ConversionTarget,
    TypeConverter,
    apply_conversion,
)
from ..rewrite.pattern import pattern
from .manager import Pass, register_pass

# ---------------------------------------------------------------------------
# Shared LLVM type converter
# ---------------------------------------------------------------------------


def llvm_type_converter(convert_memref: bool = True) -> TypeConverter:
    converter = TypeConverter()

    def convert(type: Type) -> Optional[Type]:
        if isinstance(type, IndexType):
            return I64
        if convert_memref and isinstance(type, MemRefType):
            return LLVMPointerType()
        return None

    converter.add_conversion(convert)
    return converter


# ---------------------------------------------------------------------------
# 1. convert-scf-to-cf
# ---------------------------------------------------------------------------


def _outermost_scf_ops(root: Operation) -> List[Operation]:
    """scf.for/if/forall ops with no scf ancestor (lowered first)."""
    found: List[Operation] = []

    def visit(op: Operation) -> None:
        if op.name in ("scf.for", "scf.if", "scf.forall"):
            found.append(op)
            return  # do not descend; inner ones are handled next round
        for region in op.regions:
            for block in region.blocks:
                for nested in list(block.ops):
                    visit(nested)

    visit(root)
    return found


def _split_block_after(op: Operation, arg_types: List[Type]) -> Block:
    """Move everything after ``op`` into a fresh successor block."""
    block = op.parent
    assert block is not None and block.parent is not None
    region = block.parent
    continuation = Block(arg_types)
    position = block.ops.index(op)
    for trailing in list(block.ops[position + 1 :]):
        block.remove(trailing)
        continuation.append(trailing)
    region.insert_block(region.blocks.index(block) + 1, continuation)
    return continuation


def lower_scf_for(for_op: Operation) -> None:
    """Classic CFG lowering: entry -> cond -> body -> cond / continue."""
    from ..dialects import arith, cf, scf  # local to avoid import cycles

    block = for_op.parent
    assert block is not None and block.parent is not None
    region = block.parent

    iter_types = [v.type for v in for_op.operands[3:]]
    continuation = _split_block_after(for_op, iter_types)
    for result, arg in zip(for_op.results, continuation.args):
        result.replace_all_uses_with(arg)

    cond_block = Block([IndexType(), *iter_types])
    region.insert_block(region.blocks.index(block) + 1, cond_block)

    body_block = for_op.regions[0].entry_block
    # Remap body block arguments (iv + iter args) to the condition
    # block's arguments, then strip them: the body becomes a plain block.
    for body_arg, cond_arg in zip(list(body_block.args), cond_block.args):
        body_arg.replace_all_uses_with(cond_arg)
    body_block.args = []
    for_op.regions[0].remove_block(body_block)
    region.insert_block(region.blocks.index(cond_block) + 1, body_block)

    lb, ub, step = for_op.operands[0], for_op.operands[1], for_op.operands[2]
    inits = for_op.operands[3:]

    # Terminate the entry block with a jump into the condition block.
    entry_builder = Builder.at_end(block)
    for_op.drop_all_references()
    block.remove(for_op)
    cf.br(entry_builder, cond_block, [lb, *inits])

    # Condition block: iv < ub ? body : continuation.
    cond_builder = Builder.at_end(cond_block)
    in_bounds = arith.cmpi(cond_builder, "slt", cond_block.args[0], ub)
    cf.cond_br(
        cond_builder,
        in_bounds,
        body_block,
        continuation,
        true_args=[],
        false_args=list(cond_block.args[1:]),
    )

    # Body terminator: increment the induction variable and loop back.
    yield_op = body_block.ops[-1]
    assert yield_op.name == "scf.yield"
    yielded = list(yield_op.operands)
    body_builder = Builder.before(yield_op)
    next_iv = arith.addi(body_builder, cond_block.args[0], step)
    yield_op.drop_all_references()
    body_block.remove(yield_op)
    body_builder = Builder.at_end(body_block)
    cf.br(body_builder, cond_block, [next_iv, *yielded])


def lower_scf_if(if_op: Operation) -> None:
    from ..dialects import cf

    block = if_op.parent
    assert block is not None and block.parent is not None
    region = block.parent

    result_types = [r.type for r in if_op.results]
    continuation = _split_block_after(if_op, result_types)
    for result, arg in zip(if_op.results, continuation.args):
        result.replace_all_uses_with(arg)

    branch_blocks: List[Block] = []
    for branch_region in if_op.regions:
        if not branch_region.blocks:
            branch_blocks.append(continuation)
            continue
        branch_block = branch_region.entry_block
        branch_region.remove_block(branch_block)
        region.insert_block(region.blocks.index(block) + 1, branch_block)
        terminator = branch_block.ops[-1] if branch_block.ops else None
        yielded: List[Value] = []
        if terminator is not None and terminator.name == "scf.yield":
            yielded = list(terminator.operands)
            terminator.drop_all_references()
            branch_block.remove(terminator)
        cf.br(Builder.at_end(branch_block), continuation, yielded)
        branch_blocks.append(branch_block)
    while len(branch_blocks) < 2:
        branch_blocks.append(continuation)

    condition = if_op.operand(0)
    builder = Builder.at_end(block)
    if_op.drop_all_references()
    block.remove(if_op)
    cf.cond_br(builder, condition, branch_blocks[0], branch_blocks[1])


def lower_scf_forall(forall_op: Operation) -> None:
    """Rewrite scf.forall into a nest of scf.for (then lowered normally)."""
    from ..dialects import arith, scf

    builder = Builder.before(forall_op)
    zero = arith.index_constant(builder, 0)
    one = arith.index_constant(builder, 1)

    bounds = list(forall_op.operands)
    body = forall_op.regions[0].entry_block

    outer: Optional[Operation] = None
    ivs: List[Value] = []
    inner_builder = builder
    for bound in bounds:
        loop = scf.for_(inner_builder, zero, bound, one)
        if outer is None:
            outer = loop
        ivs.append(loop.induction_var)
        inner_builder = Builder.at_end(loop.body)
        if bound is not bounds[-1]:
            pass
    # Move the forall body into the innermost loop.
    innermost_block = inner_builder.ip.block
    for arg, iv in zip(list(body.args), ivs):
        arg.replace_all_uses_with(iv)
    for op in list(body.ops):
        body.remove(op)
        innermost_block.append(op)
    terminator = innermost_block.ops[-1] if innermost_block.ops else None
    if terminator is None or terminator.name != "scf.yield":
        scf.yield_(Builder.at_end(innermost_block))
    # Close intermediate loops with yields.
    current = outer
    while current is not None and current.name == "scf.for":
        block = current.regions[0].entry_block
        if not block.ops or block.ops[-1].name != "scf.yield":
            scf.yield_(Builder.at_end(block))
        nested = [o for o in block.ops if o.name == "scf.for"]
        current = nested[0] if nested else None
    forall_op.erase()


@register_pass
class ConvertSCFToCFPass(Pass):
    NAME = "convert-scf-to-cf"
    DESCRIPTION = "lower structured control flow to basic blocks"
    #: Declared pre-/post-conditions (paper Fig. 2 / Table 2 row 1).
    PRECONDITIONS = {"scf.*"}
    POSTCONDITIONS = {"cf.br", "cf.cond_br", "arith.addi", "arith.cmpi",
                      "arith.constant", "builtin.unrealized_conversion_cast"}

    def run(self, op: Operation) -> None:
        while True:
            outermost = _outermost_scf_ops(op)
            if not outermost:
                return
            for scf_op in outermost:
                if scf_op.parent is None:
                    continue
                if scf_op.name == "scf.for":
                    lower_scf_for(scf_op)
                elif scf_op.name == "scf.if":
                    lower_scf_if(scf_op)
                elif scf_op.name == "scf.forall":
                    lower_scf_forall(scf_op)


# ---------------------------------------------------------------------------
# 2. convert-arith-to-llvm
# ---------------------------------------------------------------------------

_ARITH_TO_LLVM = {
    "arith.addi": "llvm.add",
    "arith.subi": "llvm.sub",
    "arith.muli": "llvm.mul",
    "arith.divsi": "llvm.sdiv",
    "arith.divui": "llvm.udiv",
    "arith.remsi": "llvm.srem",
    "arith.andi": "llvm.and",
    "arith.ori": "llvm.or",
    "arith.xori": "llvm.xor",
    "arith.shli": "llvm.shl",
    "arith.shrsi": "llvm.ashr",
    "arith.addf": "llvm.fadd",
    "arith.subf": "llvm.fsub",
    "arith.mulf": "llvm.fmul",
    "arith.divf": "llvm.fdiv",
    "arith.select": "llvm.select",
    "arith.index_cast": "llvm.sext",
    "arith.sitofp": "llvm.sitofp",
    "arith.fptosi": "llvm.fptosi",
    "arith.extf": "llvm.fpext",
    "arith.truncf": "llvm.fptrunc",
    "arith.extsi": "llvm.sext",
    "arith.extui": "llvm.zext",
    "arith.trunci": "llvm.trunc",
    "arith.bitcast": "llvm.bitcast",
}


@register_pass
class ConvertArithToLLVMPass(Pass):
    NAME = "convert-arith-to-llvm"
    DESCRIPTION = "lower arith ops to the LLVM dialect"
    PRECONDITIONS = {"arith.*"}
    POSTCONDITIONS = {"llvm.add", "llvm.sub", "llvm.mul", "llvm.fadd",
                      "llvm.fmul", "llvm.fdiv", "llvm.sdiv", "llvm.udiv",
                      "llvm.icmp", "llvm.fcmp", "llvm.select",
                      "llvm.constant", "llvm.sext", "llvm.and", "llvm.or",
                      "llvm.xor", "llvm.srem", "llvm.fsub", "llvm.zext",
                      "llvm.trunc", "llvm.sitofp", "llvm.fptosi",
                      "llvm.fpext", "llvm.fptrunc", "llvm.bitcast",
                      "llvm.shl", "llvm.ashr",
                      "builtin.unrealized_conversion_cast"}

    def run(self, op: Operation) -> None:
        converter = llvm_type_converter(convert_memref=False)
        target = ConversionTarget()
        target.add_illegal_dialect("arith")
        target.add_legal_dialect("llvm", "builtin")

        @pattern(label="arith-to-llvm")
        def convert(candidate: Operation, rewriter) -> bool:
            if not candidate.name.startswith("arith."):
                return False
            operands = rewriter.remapped_operands(candidate)
            result_types = [
                converter.convert_type(r.type) for r in candidate.results
            ]
            if candidate.name == "arith.constant":
                new_op = rewriter.create(
                    "llvm.constant",
                    result_types=result_types,
                    attributes={"value": candidate.attr("value")},
                )
            elif candidate.name in ("arith.cmpi", "arith.cmpf"):
                llvm_name = (
                    "llvm.icmp" if candidate.name == "arith.cmpi"
                    else "llvm.fcmp"
                )
                new_op = rewriter.create(
                    llvm_name,
                    operands=operands,
                    result_types=result_types,
                    attributes={"predicate": candidate.attr("predicate")},
                )
            elif candidate.name in ("arith.maxsi", "arith.minsi",
                                    "arith.maximumf", "arith.minimumf"):
                predicate = "sgt" if "max" in candidate.name else "slt"
                cmp_name = (
                    "llvm.icmp" if candidate.name.endswith("i")
                    else "llvm.fcmp"
                )
                from ..ir.types import I1

                cmp = rewriter.create(
                    cmp_name,
                    operands=operands,
                    result_types=[I1],
                    attributes={"predicate": predicate},
                )
                new_op = rewriter.create(
                    "llvm.select",
                    operands=[cmp.result, *operands],
                    result_types=result_types,
                )
            else:
                llvm_name = _ARITH_TO_LLVM.get(candidate.name)
                if llvm_name is None:
                    return False
                new_op = rewriter.create(
                    llvm_name, operands=operands, result_types=result_types
                )
            rewriter.replace_op(candidate, new_op.results)
            return True

        apply_conversion(op, [convert], target, converter)


# ---------------------------------------------------------------------------
# 3. convert-cf-to-llvm
# ---------------------------------------------------------------------------


@register_pass
class ConvertCFToLLVMPass(Pass):
    NAME = "convert-cf-to-llvm"
    DESCRIPTION = "lower cf branches to LLVM branches"
    PRECONDITIONS = {"cf.*"}
    POSTCONDITIONS = {"llvm.br", "llvm.cond_br", "llvm.switch",
                      "llvm.unreachable",
                      "builtin.unrealized_conversion_cast"}

    _MAP = {
        "cf.br": "llvm.br",
        "cf.cond_br": "llvm.cond_br",
        "cf.switch": "llvm.switch",
    }

    def run(self, op: Operation) -> None:
        converter = llvm_type_converter(convert_memref=False)
        target = ConversionTarget()
        target.add_illegal_dialect("cf")
        target.add_legal_dialect("llvm", "builtin")

        @pattern(label="cf-to-llvm")
        def convert(candidate: Operation, rewriter) -> bool:
            llvm_name = self._MAP.get(candidate.name)
            if llvm_name is None:
                return False
            operands = rewriter.remapped_operands(candidate)
            new_op = rewriter.create(
                llvm_name,
                operands=operands,
                successors=list(candidate.successors),
                attributes=dict(candidate.attributes),
            )
            rewriter.replace_op(candidate, new_op.results)
            return True

        apply_conversion(op, [convert], target, converter)


# ---------------------------------------------------------------------------
# 4. convert-func-to-llvm
# ---------------------------------------------------------------------------


@register_pass
class ConvertFuncToLLVMPass(Pass):
    NAME = "convert-func-to-llvm"
    DESCRIPTION = "lower func.func/call/return to the LLVM dialect"
    PRECONDITIONS = {"func.*"}
    POSTCONDITIONS = {"llvm.func", "llvm.call", "llvm.return",
                      "llvm.constant", "llvm.alloca", "llvm.load",
                      "llvm.store", "llvm.undef",
                      "builtin.unrealized_conversion_cast"}

    def run(self, op: Operation) -> None:
        from ..rewrite.conversion import ConversionRewriter

        converter = llvm_type_converter(convert_memref=False)
        rewriter = ConversionRewriter(converter)

        for func_op in list(op.walk_ops("func.func")):
            new_func = Operation.create(
                "llvm.func",
                regions=1,
                attributes=dict(func_op.attributes),
            )
            region = func_op.regions[0]
            for block in list(region.blocks):
                region.remove_block(block)
                new_func.regions[0].add_block(block)
                rewriter.convert_block_signature(block)
            parent = func_op.parent
            assert parent is not None
            parent.insert_before(func_op, new_func)
            func_op.erase()

        target = ConversionTarget()
        target.add_illegal_dialect("func")
        target.add_legal_dialect("llvm", "builtin")

        @pattern(label="func-ops-to-llvm")
        def convert(candidate: Operation, inner_rewriter) -> bool:
            operands = inner_rewriter.remapped_operands(candidate)
            result_types = [
                converter.convert_type(r.type) for r in candidate.results
            ]
            if candidate.name == "func.return":
                new_op = inner_rewriter.create(
                    "llvm.return", operands=operands
                )
            elif candidate.name == "func.call":
                new_op = inner_rewriter.create(
                    "llvm.call",
                    operands=operands,
                    result_types=result_types,
                    attributes={"callee": candidate.attr("callee")},
                )
            else:
                return False
            inner_rewriter.replace_op(candidate, new_op.results)
            return True

        apply_conversion(op, [convert], target, converter)


# ---------------------------------------------------------------------------
# 5. expand-strided-metadata
# ---------------------------------------------------------------------------


@register_pass
class ExpandStridedMetadataPass(Pass):
    """Externalize non-trivial memref addressing.

    Subviews with a purely static zero-offset/unit-stride layout pass
    through untouched. Non-trivial subviews are decomposed into
    ``extract_strided_metadata`` + offset arithmetic +
    ``reinterpret_cast``; *dynamic* offsets produce ``affine.apply``
    index computations — the operation the rest of the Table-2 pipeline
    does not expect (case study 2).
    """

    NAME = "expand-strided-metadata"
    DESCRIPTION = "externalize non-trivial memref address computations"
    PRECONDITIONS = {"memref.subview"}
    POSTCONDITIONS = {"memref.subview.constr",
                      "memref.extract_strided_metadata",
                      "memref.reinterpret_cast",
                      "memref.extract_aligned_pointer_as_index",
                      "affine.apply", "affine.min", "arith.constant"}

    def run(self, op: Operation) -> None:
        from ..dialects import arith

        for subview in list(op.walk_ops("memref.subview")):
            if subview.parent is None:
                continue
            if subview.has_trivial_metadata:  # type: ignore[attr-defined]
                continue
            source_type = subview.source.type  # type: ignore[attr-defined]
            assert isinstance(source_type, MemRefType)
            strides = source_type.identity_strides()
            builder = Builder.before(subview)

            metadata = builder.create(
                "memref.extract_strided_metadata",
                operands=[subview.source],  # type: ignore[attr-defined]
                result_types=[
                    MemRefType((), source_type.element_type),
                    IndexType(),
                    *[IndexType()] * source_type.rank * 2,
                ],
            )

            static_offsets = subview.static_offsets  # type: ignore[attr-defined]
            dynamic_values = list(subview.dynamic_operands)  # type: ignore[attr-defined]

            # Linear offset = sum(offset_i * stride_i). Static parts fold
            # into a constant; dynamic parts become an affine.apply over
            # symbols — the key op introduced by this lowering.
            static_part = sum(
                offset * stride
                for offset, stride in zip(static_offsets, strides)
                if offset != DYNAMIC
            )
            dynamic_exprs: List[AffineExpr] = []
            dynamic_operands: List[Value] = []
            dynamic_index = 0
            for offset, stride in zip(static_offsets, strides):
                if offset == DYNAMIC:
                    dynamic_exprs.append(
                        AffineSymbol(dynamic_index) * stride
                    )
                    dynamic_operands.append(dynamic_values[dynamic_index])
                    dynamic_index += 1

            if dynamic_exprs:
                expr: AffineExpr = AffineConstant(static_part)
                for term in dynamic_exprs:
                    expr = expr + term
                offset_map = AffineMap(0, len(dynamic_operands), (expr,))
                from ..dialects import affine as affine_dialect

                linear_offset = affine_dialect.apply(
                    builder, offset_map, dynamic_operands
                )
            else:
                linear_offset = arith.constant(
                    builder, static_part, IndexType()
                )

            sizes = subview.static_sizes  # type: ignore[attr-defined]
            result_type = MemRefType(
                tuple(sizes), source_type.element_type
            )
            recast = builder.create(
                "memref.reinterpret_cast",
                operands=[metadata.results[0], linear_offset],
                result_types=[result_type],
                attributes={
                    "static_sizes": DenseIntAttr(tuple(sizes)),
                    "static_strides": DenseIntAttr(tuple(strides[-len(sizes):])) if sizes else DenseIntAttr(()),
                },
            )
            subview.replace_all_uses_with([recast.result])
            subview.erase()


# ---------------------------------------------------------------------------
# 6. finalize-memref-to-llvm
# ---------------------------------------------------------------------------


@register_pass
class FinalizeMemRefToLLVMPass(Pass):
    NAME = "finalize-memref-to-llvm"
    DESCRIPTION = "lower trivially-indexed memrefs to LLVM pointers"
    PRECONDITIONS = {"memref.subview.constr", "memref.load", "memref.store",
                     "memref.alloc", "memref.dealloc",
                     "memref.reinterpret_cast",
                     "memref.extract_strided_metadata",
                     "memref.extract_aligned_pointer_as_index"}
    POSTCONDITIONS = {"llvm.add", "llvm.mul", "llvm.alloca", "llvm.br",
                      "llvm.call", "llvm.constant", "llvm.load",
                      "llvm.store", "llvm.getelementptr", "llvm.ptrtoint",
                      "llvm.undef",
                      "builtin.unrealized_conversion_cast"}

    def run(self, op: Operation) -> None:
        converter = llvm_type_converter(convert_memref=True)
        target = ConversionTarget()
        target.add_illegal_dialect("memref")
        target.add_legal_dialect("llvm", "builtin")

        from ..rewrite.conversion import ConversionRewriter

        signature_rewriter = ConversionRewriter(converter)
        for func_op in list(op.walk_ops("llvm.func")):
            for block in func_op.regions[0].blocks:
                signature_rewriter.convert_block_signature(block)

        @pattern(label="memref-to-llvm")
        def convert(candidate: Operation, rewriter) -> bool:
            name = candidate.name
            if not name.startswith("memref."):
                return False
            operands = rewriter.remapped_operands(candidate)
            if name == "memref.load":
                ref_type = candidate.operand(0).type
                address = _linearized_address(
                    rewriter, operands[0], operands[1:], ref_type
                )
                element = converter.convert_type(
                    candidate.results[0].type
                )
                new_op = rewriter.create(
                    "llvm.load", operands=[address], result_types=[element]
                )
                rewriter.replace_op(candidate, new_op.results)
                return True
            if name == "memref.store":
                ref_type = candidate.operand(1).type
                address = _linearized_address(
                    rewriter, operands[1], operands[2:], ref_type
                )
                rewriter.create(
                    "llvm.store", operands=[operands[0], address]
                )
                rewriter.replace_op(candidate, [])
                return True
            if name in ("memref.alloc", "memref.alloca"):
                size = rewriter.create(
                    "llvm.constant",
                    result_types=[I64],
                    attributes={"value": candidate.attr("byte_size") or 0},
                )
                new_op = rewriter.create(
                    "llvm.call",
                    operands=[size.result],
                    result_types=[LLVMPointerType()],
                    attributes={"callee": SymbolRefAttr("malloc")},
                )
                rewriter.replace_op(candidate, new_op.results)
                return True
            if name == "memref.dealloc":
                rewriter.create(
                    "llvm.call",
                    operands=operands,
                    attributes={"callee": SymbolRefAttr("free")},
                )
                rewriter.replace_op(candidate, [])
                return True
            if name == "memref.reinterpret_cast":
                # base pointer + byte offset -> getelementptr
                new_op = rewriter.create(
                    "llvm.getelementptr",
                    operands=operands[:2],
                    result_types=[LLVMPointerType()],
                )
                rewriter.replace_op(candidate, new_op.results)
                return True
            if name == "memref.extract_strided_metadata":
                source_type = candidate.operand(0).type
                assert isinstance(source_type, MemRefType)
                replacements: List[Value] = [operands[0]]
                zero = rewriter.create(
                    "llvm.constant", result_types=[I64],
                    attributes={"value": 0},
                )
                replacements.append(zero.result)
                for index, size in enumerate(source_type.shape):
                    size_const = rewriter.create(
                        "llvm.constant", result_types=[I64],
                        attributes={"value": size},
                    )
                    replacements.append(size_const.result)
                for stride in source_type.identity_strides():
                    stride_const = rewriter.create(
                        "llvm.constant", result_types=[I64],
                        attributes={"value": stride},
                    )
                    replacements.append(stride_const.result)
                rewriter.replace_op(
                    candidate, replacements[: len(candidate.results)]
                )
                return True
            if name == "memref.extract_aligned_pointer_as_index":
                new_op = rewriter.create(
                    "llvm.ptrtoint", operands=operands, result_types=[I64]
                )
                rewriter.replace_op(candidate, new_op.results)
                return True
            if name == "memref.subview":
                if not candidate.has_trivial_metadata:  # type: ignore[attr-defined]
                    return False  # cannot legalize non-trivial views here
                rewriter.replace_op(candidate, [operands[0]])
                return True
            if name in ("memref.cast", "memref.copy", "memref.dim"):
                if name == "memref.dim":
                    return False
                rewriter.replace_op(candidate, [operands[0]])
                return True
            return False

        apply_conversion(op, [convert], target, converter)
        self._adopt_converted_operands(op, converter)

    @staticmethod
    def _adopt_converted_operands(root: Operation,
                                  converter: TypeConverter) -> None:
        """Direct calling convention: llvm ops consuming a cast back to
        a memref/index simply take the converted (ptr/i64) value.

        Mirrors MLIR's bare-pointer call convention, where calls are
        rewritten against the full LLVM type converter so no cast
        survives at llvm-op operands.
        """
        for user in root.walk():
            if not user.name.startswith("llvm."):
                continue
            for index, operand in enumerate(user.operands):
                defining = operand.defining_op()
                if (
                    defining is not None
                    and defining.name == CAST_NAME
                    and converter.convert_type(operand.type)
                    == defining.operand(0).type
                ):
                    user.set_operand(index, defining.operand(0))


def _linearized_address(rewriter, base: Value, indices: List[Value],
                        ref_type: Type) -> Value:
    """getelementptr(base, sum(index_i * stride_i)) for static shapes."""
    assert isinstance(ref_type, MemRefType)
    strides = ref_type.identity_strides()
    linear: Optional[Value] = None
    for index_value, stride in zip(indices, strides):
        stride_const = rewriter.create(
            "llvm.constant", result_types=[I64], attributes={"value": stride}
        )
        term = rewriter.create(
            "llvm.mul",
            operands=[index_value, stride_const.result],
            result_types=[I64],
        )
        if linear is None:
            linear = term.result
        else:
            linear = rewriter.create(
                "llvm.add", operands=[linear, term.result],
                result_types=[I64],
            ).result
    if linear is None:
        linear = rewriter.create(
            "llvm.constant", result_types=[I64], attributes={"value": 0}
        ).result
    return rewriter.create(
        "llvm.getelementptr",
        operands=[base, linear],
        result_types=[LLVMPointerType()],
    ).result


# ---------------------------------------------------------------------------
# 7. reconcile-unrealized-casts
# ---------------------------------------------------------------------------

CAST_NAME = "builtin.unrealized_conversion_cast"


def _fold_cast_chains(op: Operation) -> bool:
    changed = False
    for cast in list(op.walk_ops(CAST_NAME)):
        if cast.parent is None:
            continue
        target_type = cast.results[0].type
        # Walk up through any chain of casts; if some value along the
        # chain already has the output type, the whole chain between
        # them cancels (covers cast(x:T->T), pairs, and longer chains).
        source: Optional[Value] = cast.operand(0)
        replacement: Optional[Value] = None
        seen = 0
        while source is not None and seen < 32:
            if source.type == target_type:
                replacement = source
                break
            defining = source.defining_op()
            if defining is None or defining.name != CAST_NAME:
                break
            source = defining.operand(0)
            seen += 1
        if replacement is not None:
            cast.replace_all_uses_with([replacement])
            cast.erase()
            changed = True
            continue
        # unused cast
        if not cast.results[0].has_uses():
            cast.erase()
            changed = True
    return changed


@register_pass
class ReconcileUnrealizedCastsPass(Pass):
    """Cancel matching cast pairs; fail on leftovers with MLIR's wording."""

    NAME = "reconcile-unrealized-casts"
    DESCRIPTION = "eliminate temporary conversion casts"
    PRECONDITIONS = {CAST_NAME}
    POSTCONDITIONS: set = set()

    def run(self, op: Operation) -> None:
        while _fold_cast_chains(op):
            pass
        for leftover in op.walk_ops(CAST_NAME):
            raise ConversionError(
                f"failed to legalize operation '{CAST_NAME}' that was "
                "explicitly marked illegal",
                leftover,
            )


# ---------------------------------------------------------------------------
# lower-affine (the fix for case study 2)
# ---------------------------------------------------------------------------


def _expand_affine_expr(builder: Builder, expr: AffineExpr,
                        dims: List[Value], symbols: List[Value]) -> Value:
    from ..dialects import arith

    if isinstance(expr, AffineConstant):
        return arith.constant(builder, expr.value, IndexType())
    if isinstance(expr, AffineDim):
        return dims[expr.position]
    if isinstance(expr, AffineSymbol):
        return symbols[expr.position]
    lhs = _expand_affine_expr(builder, expr.lhs, dims, symbols)  # type: ignore[attr-defined]
    rhs = _expand_affine_expr(builder, expr.rhs, dims, symbols)  # type: ignore[attr-defined]
    kind = expr.kind  # type: ignore[attr-defined]
    if kind == "add":
        return arith.addi(builder, lhs, rhs)
    if kind == "mul":
        return arith.muli(builder, lhs, rhs)
    if kind in ("floordiv", "ceildiv"):
        return arith.divsi(builder, lhs, rhs)
    return arith.remsi(builder, lhs, rhs)


@register_pass
class LowerAffinePass(Pass):
    NAME = "lower-affine"
    DESCRIPTION = "expand affine.apply/min/max into arith ops"
    PRECONDITIONS = {"affine.apply", "affine.min", "affine.max"}
    POSTCONDITIONS = {"arith.addi", "arith.muli", "arith.divsi",
                      "arith.remsi", "arith.constant", "arith.maxsi",
                      "arith.minsi"}

    def run(self, op: Operation) -> None:
        from ..dialects import arith

        for affine_op in list(op.walk()):
            if affine_op.parent is None:
                continue
            if affine_op.name not in ("affine.apply", "affine.min",
                                      "affine.max"):
                continue
            map_ = affine_op.map  # type: ignore[attr-defined]
            builder = Builder.before(affine_op)
            dims = affine_op.operands[: map_.num_dims]
            symbols = affine_op.operands[map_.num_dims :]
            values = [
                _expand_affine_expr(builder, expr, dims, symbols)
                for expr in map_.results
            ]
            combined = values[0]
            for value in values[1:]:
                combined = (
                    arith.minsi(builder, combined, value)
                    if affine_op.name == "affine.min"
                    else arith.maxsi(builder, combined, value)
                )
            affine_op.replace_all_uses_with([combined])
            affine_op.erase()
