"""Function inlining.

Used both as a payload optimization and — crucially for §3.4 of the
paper — to expand ``transform.include`` macros, since named transform
sequences are function-like objects handled by the ordinary inliner.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..ir.builder import Builder
from ..ir.context import lookup_symbol
from ..ir.core import Operation, Value
from .manager import Pass, register_pass


class InliningError(Exception):
    pass


def inline_call(call_op: Operation, callee: Operation) -> None:
    """Inline ``callee``'s single-block body at ``call_op``.

    Arguments are substituted for block parameters; the terminator's
    operands replace the call results.
    """
    if not callee.regions or not callee.regions[0].blocks:
        raise InliningError(f"cannot inline declaration {callee.name}")
    if len(callee.regions[0].blocks) != 1:
        raise InliningError("multi-block inlining is not supported")

    value_map: Dict[Value, Value] = {}
    body = callee.regions[0].entry_block
    if len(body.args) != call_op.num_operands:
        raise InliningError("call argument count mismatch")
    for arg, actual in zip(body.args, call_op.operands):
        value_map[arg] = actual

    target = call_op.parent
    assert target is not None
    builder = Builder.before(call_op)
    returned = []
    for op in body.ops:
        if op is body.ops[-1] and op.name in (
            "func.return", "transform.yield"
        ):
            returned = [value_map.get(v, v) for v in op.operands]
            continue
        builder.insert(op.clone(value_map))
    call_op.replace_all_uses_with(returned)
    call_op.erase()


def find_callee(call_op: Operation, callee_attr: str = "callee") -> Optional[Operation]:
    attr = call_op.attr(callee_attr)
    if attr is None:
        return None
    name = getattr(attr, "name", None) or getattr(attr, "value", None)
    if not isinstance(name, str):
        return None
    return lookup_symbol(call_op, name)


def detect_recursion(module: Operation, call_name: str = "func.call") -> bool:
    """True when the call graph under ``module`` has a cycle."""
    edges: Dict[str, set] = {}
    for func_op in module.walk_ops("func.func"):
        caller = func_op.attr("sym_name").value  # type: ignore[union-attr]
        edges.setdefault(caller, set())
        for call_op in func_op.walk_ops(call_name):
            callee = call_op.attr("callee")
            if callee is not None:
                edges[caller].add(callee.name)  # type: ignore[union-attr]

    visiting: set = set()
    done: set = set()

    def visit(node: str) -> bool:
        if node in done:
            return False
        if node in visiting:
            return True
        visiting.add(node)
        for succ in edges.get(node, ()):
            if visit(succ):
                return True
        visiting.discard(node)
        done.add(node)
        return False

    return any(visit(node) for node in list(edges))


@register_pass
class InlinerPass(Pass):
    """Inline every ``func.call`` whose callee is a defined function.

    With ``always=False`` (default) only callees annotated with an
    ``inline`` unit attribute are expanded.
    """

    NAME = "inline"
    DESCRIPTION = "inline function calls"

    def __init__(self, always: bool = False, **options) -> None:
        super().__init__(always=always, **options)
        self.always = bool(always)

    def run(self, op: Operation) -> None:
        if detect_recursion(op):
            raise InliningError("recursive call graph; refusing to inline")
        changed = True
        while changed:
            changed = False
            for call_op in list(op.walk_ops("func.call")):
                if call_op.parent is None:
                    continue
                callee = find_callee(call_op)
                if callee is None or not callee.regions[0].blocks:
                    continue
                if not self.always and callee.attr("inline") is None:
                    continue
                inline_call(call_op, callee)
                changed = True
