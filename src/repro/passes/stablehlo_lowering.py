"""StableHLO -> arith lowering (the Fig. 5 abstraction ladder).

A one-to-one conversion of elementwise StableHLO ops to their arith
counterparts operating on tensors; together with ``convert-arith-to-llvm``
it forms the stablehlo -> arith -> llvm progression along which the AD
transform must pick the right kind of "add" (§3.4, Fig. 5).
"""

from __future__ import annotations

from ..ir.core import Operation
from ..rewrite.conversion import ConversionTarget, apply_conversion
from ..rewrite.pattern import pattern
from .manager import Pass, register_pass

_HLO_TO_ARITH = {
    "stablehlo.add": "arith.addf",
    "stablehlo.subtract": "arith.subf",
    "stablehlo.multiply": "arith.mulf",
    "stablehlo.divide": "arith.divf",
    "stablehlo.maximum": "arith.maximumf",
    "stablehlo.minimum": "arith.minimumf",
    "stablehlo.constant": "arith.constant",
    "stablehlo.convert": "arith.extf",
}


@register_pass
class ConvertStablehloToArithPass(Pass):
    NAME = "convert-stablehlo-to-arith"
    DESCRIPTION = "lower elementwise StableHLO ops to arith on tensors"
    PRECONDITIONS = {"stablehlo.add", "stablehlo.subtract",
                     "stablehlo.multiply", "stablehlo.divide",
                     "stablehlo.maximum", "stablehlo.minimum",
                     "stablehlo.constant",
                     "stablehlo.convert"}
    POSTCONDITIONS = {"arith.addf", "arith.subf", "arith.mulf",
                      "arith.divf", "arith.maximumf", "arith.minimumf",
                      "arith.constant", "arith.extf"}

    def run(self, op: Operation) -> None:
        target = ConversionTarget()
        target.add_illegal_op(*_HLO_TO_ARITH)
        target.add_legal_dialect("arith")

        @pattern(label="stablehlo-to-arith")
        def convert(candidate: Operation, rewriter) -> bool:
            arith_name = _HLO_TO_ARITH.get(candidate.name)
            if arith_name is None:
                return False
            attributes = dict(candidate.attributes)
            if candidate.name == "stablehlo.constant":
                attributes.setdefault("value", 0)
            new_op = rewriter.create(
                arith_name,
                operands=list(candidate.operands),
                result_types=[r.type for r in candidate.results],
                attributes=attributes,
            )
            rewriter.replace_op(candidate, new_op.results)
            return True

        apply_conversion(op, [convert], target)
