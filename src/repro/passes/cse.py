"""Common subexpression elimination over pure operations."""

from __future__ import annotations

from typing import Dict, Tuple

from ..ir.core import Block, Operation, Pure
from ..ir.printer import print_attribute
from .manager import Pass, register_pass


def _op_key(op: Operation) -> Tuple:
    """A structural key: name, operand identities, attrs, result types."""
    attrs = tuple(
        (name, print_attribute(value))
        for name, value in sorted(op.attributes.items())
    )
    return (
        op.name,
        tuple(id(v) for v in op.operands),
        attrs,
        tuple(str(r.type) for r in op.results),
    )


def _cse_block(block: Block, seen: Dict[Tuple, Operation]) -> int:
    """Deduplicate within a block; nested regions get child scopes."""
    removed = 0
    for op in list(block.ops):
        if op.parent is None:
            continue
        # Recurse first so nested duplicates are folded before hashing.
        for region in op.regions:
            for nested in region.blocks:
                removed += _cse_block(nested, dict(seen))
        if not op.has_trait(Pure) or not op.results or op.regions:
            continue
        key = _op_key(op)
        existing = seen.get(key)
        if existing is not None:
            op.replace_all_uses_with(list(existing.results))
            op.erase()
            removed += 1
        else:
            seen[key] = op
    return removed


@register_pass
class CSEPass(Pass):
    """Eliminate duplicate pure operations (dominance via nesting scopes)."""

    NAME = "cse"
    DESCRIPTION = "common subexpression elimination"

    def run(self, op: Operation) -> None:
        for region in op.regions:
            for block in region.blocks:
                _cse_block(block, {})
