"""Canonicalization: local simplification patterns + dead code elimination.

Dialects contribute patterns to :data:`CANONICALIZATION_PATTERNS`; the
pass runs them greedily and sweeps unused pure operations, mirroring
MLIR's ``canonicalize``.
"""

from __future__ import annotations

from typing import List

from ..ir.core import Commutative, Operation, Pure
from ..rewrite.greedy import FrozenPatternSet, apply_patterns_greedily
from ..rewrite.pattern import PatternRewriter, RewritePattern, pattern
from .manager import Pass, register_pass

#: Patterns run by the canonicalize pass; extend via register_canonicalization.
CANONICALIZATION_PATTERNS: List[RewritePattern] = []

#: Frozen (bucketed, benefit-sorted) view of the registry, rebuilt only
#: when new patterns are registered.
_frozen_cache: tuple = (0, None)


def frozen_canonicalization_patterns() -> FrozenPatternSet:
    global _frozen_cache
    count, frozen = _frozen_cache
    if frozen is None or count != len(CANONICALIZATION_PATTERNS):
        frozen = FrozenPatternSet(CANONICALIZATION_PATTERNS)
        _frozen_cache = (len(CANONICALIZATION_PATTERNS), frozen)
    return frozen


def register_canonicalization(pat: RewritePattern) -> RewritePattern:
    CANONICALIZATION_PATTERNS.append(pat)
    return pat


def _constant_value(value) -> object:
    """The integer/float payload when defined by arith.constant, else None."""
    defining = value.defining_op()
    if defining is not None and defining.name == "arith.constant":
        return defining.value
    return None


_INT_FOLDS = {
    "arith.addi": lambda a, b: a + b,
    "arith.subi": lambda a, b: a - b,
    "arith.muli": lambda a, b: a * b,
    "arith.divsi": lambda a, b: int(a / b) if b else None,
    "arith.remsi": lambda a, b: a - int(a / b) * b if b else None,
    "arith.andi": lambda a, b: a & b,
    "arith.ori": lambda a, b: a | b,
    "arith.xori": lambda a, b: a ^ b,
    "arith.maxsi": max,
    "arith.minsi": min,
}

_FLOAT_FOLDS = {
    "arith.addf": lambda a, b: a + b,
    "arith.subf": lambda a, b: a - b,
    "arith.mulf": lambda a, b: a * b,
    "arith.divf": lambda a, b: a / b if b else None,
    "arith.maximumf": max,
    "arith.minimumf": min,
}


@register_canonicalization
@pattern(label="fold-constant-arith")
def fold_constant_arith(op: Operation, rewriter: PatternRewriter) -> bool:
    """Fold binary arith ops whose operands are both constants."""
    fold = _INT_FOLDS.get(op.name) or _FLOAT_FOLDS.get(op.name)
    if fold is None or op.num_operands != 2:
        return False
    lhs = _constant_value(op.operand(0))
    rhs = _constant_value(op.operand(1))
    if lhs is None or rhs is None:
        return False
    result = fold(lhs, rhs)
    if result is None:
        return False
    from ..dialects import arith

    rewriter.set_insertion_point_before(op)
    folded = arith.constant(rewriter, result, op.results[0].type)
    rewriter.replace_op(op, [folded])
    return True


_IDENTITY_RIGHT = {
    "arith.addi": 0,
    "arith.subi": 0,
    "arith.muli": 1,
    "arith.divsi": 1,
    "arith.addf": 0.0,
    "arith.subf": 0.0,
    "arith.mulf": 1.0,
    "arith.divf": 1.0,
    "arith.ori": 0,
    "arith.xori": 0,
    "arith.shli": 0,
}


@register_canonicalization
@pattern(label="fold-identity")
def fold_identity(op: Operation, rewriter: PatternRewriter) -> bool:
    """``x + 0 -> x``, ``x * 1 -> x`` and commuted variants."""
    identity = _IDENTITY_RIGHT.get(op.name)
    if identity is None or op.num_operands != 2:
        return False
    rhs = _constant_value(op.operand(1))
    if rhs == identity:
        rewriter.replace_op(op, [op.operand(0)])
        return True
    if op.has_trait(Commutative):
        lhs = _constant_value(op.operand(0))
        if lhs == identity:
            rewriter.replace_op(op, [op.operand(1)])
            return True
    return False


@register_canonicalization
@pattern(label="fold-mul-zero")
def fold_mul_zero(op: Operation, rewriter: PatternRewriter) -> bool:
    """``x * 0 -> 0`` for integer multiplication."""
    if op.name != "arith.muli":
        return False
    for operand in op.operands:
        if _constant_value(operand) == 0:
            from ..dialects import arith

            rewriter.set_insertion_point_before(op)
            zero = arith.constant(rewriter, 0, op.results[0].type)
            rewriter.replace_op(op, [zero])
            return True
    return False


_CMPI_FOLDS = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "slt": lambda a, b: a < b,
    "sle": lambda a, b: a <= b,
    "sgt": lambda a, b: a > b,
    "sge": lambda a, b: a >= b,
    "ult": lambda a, b: a < b,
    "ule": lambda a, b: a <= b,
    "ugt": lambda a, b: a > b,
    "uge": lambda a, b: a >= b,
}


@register_canonicalization
@pattern("arith.cmpi", label="fold-constant-cmpi")
def fold_constant_cmpi(op: Operation, rewriter: PatternRewriter) -> bool:
    lhs = _constant_value(op.operand(0))
    rhs = _constant_value(op.operand(1))
    if lhs is None or rhs is None:
        return False
    predicate = op.predicate  # type: ignore[attr-defined]
    outcome = _CMPI_FOLDS[predicate](lhs, rhs)
    from ..dialects import arith
    from ..ir.types import I1

    rewriter.set_insertion_point_before(op)
    folded = arith.constant(rewriter, int(outcome), I1)
    rewriter.replace_op(op, [folded])
    return True


@register_canonicalization
@pattern("arith.select", label="fold-constant-select")
def fold_constant_select(op: Operation, rewriter: PatternRewriter) -> bool:
    cond = _constant_value(op.operand(0))
    if cond is None:
        return False
    rewriter.replace_op(op, [op.operand(1) if cond else op.operand(2)])
    return True


@register_canonicalization
@pattern("scf.for", label="drop-zero-trip-loop")
def drop_zero_trip_loop(op: Operation, rewriter: PatternRewriter) -> bool:
    """Remove loops with a statically empty iteration domain."""
    trip = op.trip_count()  # type: ignore[attr-defined]
    if trip != 0:
        return False
    rewriter.replace_op(op, list(op.init_args))  # type: ignore[attr-defined]
    return True


@register_canonicalization
@pattern("scf.if", label="fold-constant-if")
def fold_constant_if(op: Operation, rewriter: PatternRewriter) -> bool:
    """Inline the taken branch when the condition is constant."""
    cond = _constant_value(op.operand(0))
    if cond is None:
        return False
    taken = op.then_block if cond else op.else_block  # type: ignore[attr-defined]
    if taken is None:
        rewriter.erase_op(op)
        return True
    yield_op = taken.terminator
    yielded = list(yield_op.operands) if yield_op is not None else []
    if yield_op is not None:
        rewriter.erase_op(yield_op)
    rewriter.inline_block_before(taken, op)
    rewriter.replace_op(op, yielded)
    return True


def eliminate_dead_code(root: Operation) -> bool:
    """Erase unused pure ops, chasing def-use chains with a worklist.

    A single walk seeds the worklist; erasing an op re-enqueues its
    operand definers, so chains of dead ops cost O(erased) instead of
    one full sweep per chain link.
    """
    worklist = [op for op in root.walk() if op is not root]
    changed = False
    while worklist:
        op = worklist.pop()
        if (
            op.parent is None
            or not op.has_trait(Pure)
            or not op.results
            or any(r.has_uses() for r in op.results)
        ):
            continue
        defs = [
            d for d in (v.defining_op() for v in op.operands)
            if d is not None
        ]
        op.erase()
        changed = True
        worklist.extend(defs)
    return changed


@register_pass
class CanonicalizePass(Pass):
    """Greedy canonicalization + DCE, like MLIR's ``canonicalize``."""

    NAME = "canonicalize"
    DESCRIPTION = "apply canonicalization patterns and eliminate dead code"

    def run(self, op: Operation) -> None:
        apply_patterns_greedily(
            op, frozen_canonicalization_patterns(),
            profiler=self.options.get("profiler"),
        )
        eliminate_dead_code(op)
