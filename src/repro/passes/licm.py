"""Loop-invariant code motion."""

from __future__ import annotations


from ..ir.core import Operation, Pure
from .manager import Pass, register_pass


def is_loop_invariant(op: Operation, loop: Operation) -> bool:
    """Pure, no regions, and no operand defined inside the loop."""
    if not op.has_trait(Pure) or op.regions:
        return False
    for operand in op.operands:
        defining = operand.defining_op()
        if defining is not None and loop.is_ancestor_of(defining):
            return False
        owner = operand.owner
        # Block arguments of the loop body (induction variable etc.).
        if not isinstance(owner, Operation):
            block_parent = owner.parent_op
            if block_parent is not None and loop.is_ancestor_of(block_parent):
                return False
    return True


def hoist_loop_invariants(loop: Operation) -> int:
    """Move invariant ops of ``loop``'s body before the loop; returns count."""
    if loop.parent is None:
        raise ValueError("cannot hoist out of a detached loop")
    hoisted = 0
    changed = True
    while changed:
        changed = False
        for block in loop.regions[0].blocks:
            for op in list(block.ops):
                if op.has_trait(Pure) and is_loop_invariant(op, loop):
                    op.move_before(loop)
                    hoisted += 1
                    changed = True
    return hoisted


@register_pass
class LICMPass(Pass):
    """Hoist loop-invariant pure ops out of every scf.for."""

    NAME = "loop-invariant-code-motion"
    DESCRIPTION = "hoist loop-invariant computations out of loops"

    def run(self, op: Operation) -> None:
        # Innermost first so invariants bubble all the way out.
        loops = [o for o in op.walk() if o.name == "scf.for"]
        for loop in reversed(loops):
            if loop.parent is not None:
                hoist_loop_invariants(loop)
