"""Pass infrastructure and the passes used by the case studies.

Importing this package registers every pass in the global registry so
pipelines can be assembled by name, either through the
:class:`~repro.passes.manager.PassManager` or from a transform script
via ``transform.apply_registered_pass`` (case study 1).
"""

from .manager import (
    PASS_REGISTRY,
    Pass,
    PassManager,
    PassTiming,
    parse_pipeline,
    register_pass,
)
from . import canonicalize  # noqa: F401
from . import cse  # noqa: F401
from . import inliner  # noqa: F401
from . import licm  # noqa: F401
from . import lowerings  # noqa: F401
from . import stablehlo_lowering  # noqa: F401
from . import tosa_pipeline  # noqa: F401

__all__ = [
    "PASS_REGISTRY",
    "Pass",
    "PassManager",
    "PassTiming",
    "parse_pipeline",
    "register_pass",
]
