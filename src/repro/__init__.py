"""repro: a Python reproduction of the MLIR Transform dialect (CGO 2025).

The package is organised like the system the paper describes:

* :mod:`repro.ir` — an MLIR-like IR infrastructure built from scratch;
* :mod:`repro.dialects` — payload dialects (func, arith, scf, memref, ...);
* :mod:`repro.rewrite` — pattern rewriting and dialect conversion;
* :mod:`repro.passes` — the pass manager and lowering passes;
* :mod:`repro.transforms` — fine-grained loop/linalg transformation utilities;
* :mod:`repro.irdl` — declarative op constraints (IRDL);
* :mod:`repro.core` — **the Transform dialect**: ops, interpreter, handle
  invalidation, pre/post-conditions, static checking, script transforms;
* :mod:`repro.execution` — payload interpreter and performance simulator;
* :mod:`repro.autotuning` — Bayesian/random autotuners (case study 5);
* :mod:`repro.enzyme` — the StableHLO pattern-set debugging study (case 3);
* :mod:`repro.mlmodels` — synthetic ML model graphs (Table 1).
"""

__version__ = "1.0.0"
