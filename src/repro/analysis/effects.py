"""Failure-effect model of transform operations.

The static analyses need to know, *without executing anything*, how a
transform op can terminate: success, silenceable failure (skips the
rest of the region, recoverable by ``transform.alternatives``), or
definite failure (aborts interpretation).  This module centralises that
model so the dataflow engine (:mod:`repro.analysis.dataflow`), the
invalidation analysis and the pipeline extractor all agree with the
dynamic semantics in :mod:`repro.core.dialect`.

The classification is deliberately conservative in the *may fail*
direction: an op we know nothing about is assumed to possibly fail
silenceably.  That direction is safe — it can only downgrade a
static diagnostic from "definite error" to "possible error", never
invent a definite error on a schedule that could execute cleanly.
"""

from __future__ import annotations

from ..ir.core import Operation

#: Ops that unconditionally fail when executed (testing aids).  Code
#: after them in a block is dead; regions containing them on the
#: straight-line path can never complete successfully.
ALWAYS_FAILING = frozenset({
    "transform.test.emit_silenceable",
    "transform.test.emit_definite",
})

#: Ops whose ``apply`` can *never* produce a silenceable failure: they
#: either succeed or (for a few of them) abort with a definite error.
#: Definite errors need no skip-tracking — any run hitting one is not a
#: clean run, so they cannot create static false positives.
_NEVER_SILENCEABLE = frozenset({
    "transform.yield",
    "transform.merge_handles",
    "transform.num_payload_ops",
    "transform.param.constant",
    "transform.annotate",
    "transform.print",
    "transform.select",
    "transform.apply_registered_pass",  # pass failures are definite
    "transform.apply_patterns",         # pattern crashes are definite
    "transform.autodiff",               # missing config is definite
    "transform.named_sequence",         # inline occurrence is a no-op
    "transform.test.emit_definite",     # definite, not silenceable
})


def always_fails(op: Operation) -> bool:
    """Does ``op`` unconditionally fail when executed?"""
    return op.name in ALWAYS_FAILING


def _sequence_suppresses(op: Operation) -> bool:
    failures = op.attr("failures")
    return getattr(failures, "value", None) == "suppress"


def may_fail_silenceably(op: Operation) -> bool:
    """Can ``op`` produce a silenceable failure?

    Mirrors the interpreter rules: ``match_op`` only fails silenceably
    when a positional match comes up empty (``position`` other than
    ``"all"``); ``alternatives`` always has the empty-region fallback
    escape hatch when one of its regions is empty; a ``sequence`` in
    ``suppress`` mode swallows its body's silenceable failures.
    """
    if op.name == "transform.test.emit_silenceable":
        return True
    if op.name in _NEVER_SILENCEABLE:
        return False
    if op.name == "transform.match_op":
        position = op.attr("position")
        return getattr(position, "value", "all") != "all"
    if op.name == "transform.alternatives":
        # An empty region is the always-succeeding "leave the code
        # unchanged" fallback: the op as a whole cannot fail.
        return not any(
            not region.blocks or not region.blocks[0].ops
            for region in op.regions
        )
    if op.name == "transform.sequence":
        return not _sequence_suppresses(op)
    if op.name.startswith("transform.pattern"):
        return False
    # Loop/structured transforms, cast, split_handle, get_parent_op,
    # foreach, include, and anything unknown: assume a silenceable
    # failure is possible.
    return True


def sequence_suppresses(op: Operation) -> bool:
    """Is ``op`` a sequence that swallows silenceable body failures?"""
    return op.name == "transform.sequence" and _sequence_suppresses(op)
