"""Static pipeline checking (paper §3.3, case study 2).

Abstractly interprets a pipeline over the *set of op specs* present in
the payload: each transform removes the specs its preconditions
subsume and adds its postconditions. The checker reports:

* **leftover** specs after the pipeline that the final target does not
  allow — e.g. the ``affine.apply`` leaked by
  ``expand-strided-metadata`` which no later pass removes (the exact
  bug of case study 2);
* **phase-ordering violations**: a transform whose preconditions
  cannot match anything at its position (e.g. a loop transform on
  ``scf.for`` scheduled after ``convert-scf-to-cf``).

Pipeline *extraction* rides on the forward dataflow engine
(:mod:`repro.analysis.dataflow`), so steps appear in **execution
order**: ``transform.include`` splices the callee's steps at the call
site (cycles cut off), never-included ``named_sequence`` bodies
contribute nothing, and ``transform.alternatives`` regions become
:class:`PipelineBranch` nodes whose outcomes join as a union — each
region is checked as its own branch, not as one sequential pipeline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Set, Union

from ..ir.core import Operation

if TYPE_CHECKING:  # real import is deferred: repro.core imports us
    from ..core.conditions import TransformConditions
from .dataflow import (
    AbstractState,
    ForwardAnalysis,
    ForwardEngine,
    find_entry,
    top_level_ops,
)
from .invalidation import _resolve_include


class IssueKind(enum.Enum):
    LEFTOVER = "leftover"
    PHASE_ORDERING = "phase-ordering"
    UNKNOWN_CONDITIONS = "unknown-conditions"


@dataclass
class PipelineIssue:
    kind: IssueKind
    message: str
    position: Optional[int] = None
    transform_name: str = ""

    def __str__(self) -> str:
        where = (
            f" (step {self.position + 1}: {self.transform_name})"
            if self.position is not None
            else ""
        )
        return f"[{self.kind.value}]{where} {self.message}"


@dataclass
class PipelineReport:
    """Result of statically checking a pipeline."""

    issues: List[PipelineIssue] = field(default_factory=list)
    final_specs: Set[str] = field(default_factory=set)
    #: Per-step (name, removed, added) trace for debugging/reporting.
    trace: List[tuple] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(
            issue.kind in (IssueKind.LEFTOVER, IssueKind.PHASE_ORDERING)
            for issue in self.issues
        )

    def leftovers(self) -> List[PipelineIssue]:
        return [i for i in self.issues if i.kind is IssueKind.LEFTOVER]

    def render(self) -> str:
        lines = ["=== static pipeline check ==="]
        for name, removed, added in self.trace:
            lines.append(
                f"  {name}: -{sorted(removed) or '{}'} "
                f"+{sorted(added) or '{}'}"
            )
        lines.append(f"  final: {sorted(self.final_specs)}")
        for issue in self.issues:
            lines.append(f"  {issue}")
        lines.append("  OK" if self.ok else "  FAILED")
        return "\n".join(lines)


StepLike = Union[str, "TransformConditions"]


@dataclass
class PipelineBranch:
    """Alternative sub-pipelines: exactly one region executes."""

    regions: List[List["PipelineStep"]]


PipelineStep = Union[StepLike, PipelineBranch]


# -- extraction ---------------------------------------------------------------


class _StepsState(AbstractState):
    def __init__(self) -> None:
        super().__init__()
        self.steps: List[PipelineStep] = []

    def copy(self) -> "_StepsState":
        other = _StepsState()
        self._copy_base_into(other)
        other.steps = list(self.steps)
        return other


class PipelineExtraction(ForwardAnalysis):
    """Engine client collecting checkable steps in execution order."""

    def __init__(self) -> None:
        self._including: Set[int] = set()

    def make_state(self) -> _StepsState:
        return _StepsState()

    def before_regions(self, op: Operation, state: AbstractState,
                       recoverable: bool) -> None:
        assert isinstance(state, _StepsState)
        if op.name == "transform.apply_registered_pass":
            pass_name_attr = op.attr("pass_name")
            state.steps.append(getattr(pass_name_attr, "value", ""))
        elif op.name.startswith("transform."):
            from ..core.conditions import conditions_of

            conditions = conditions_of(op)
            if conditions is not None:
                state.steps.append(conditions)

    def join_alternatives(self, op, state, exits) -> None:
        assert isinstance(state, _StepsState)
        base = len(state.steps)
        regions: List[List[PipelineStep]] = []
        for _index, exit_state in exits:
            regions.append(
                [] if exit_state is None else exit_state.steps[base:]
            )
        state.steps.append(PipelineBranch(regions))

    def join_foreach(self, op, state, exit_state) -> None:
        assert isinstance(state, _StepsState)
        if exit_state is not None:
            # One body traversal stands in for every iteration.
            state.steps = exit_state.steps

    def on_include(self, op: Operation, state: AbstractState,
                   engine: ForwardEngine, recoverable: bool) -> None:
        assert isinstance(state, _StepsState)
        callee = _resolve_include(op)
        if callee is None or id(callee) in self._including:
            return  # unresolved target or recursion: nothing to splice
        if not callee.regions or not callee.regions[0].blocks:
            return
        self._including.add(id(callee))
        try:
            engine.run_block(callee.regions[0].entry_block, state,
                             recoverable)
        finally:
            self._including.discard(id(callee))


def extract_pipeline_tree(script: Operation,
                          entry_point: Optional[str] = None
                          ) -> List[PipelineStep]:
    """Collect checkable steps in execution order, as a branch tree.

    Starts from the op the interpreter would execute (so bodies of
    never-included named sequences contribute nothing) and expands
    ``transform.include`` at each call site.
    """
    analysis = PipelineExtraction()
    engine = ForwardEngine(analysis)
    entry = find_entry(script, entry_point)
    if entry is not None:
        state = engine.run_entry(entry)
        assert isinstance(state, _StepsState)
        return state.steps
    # No entry point (a bare module of transforms): walk what is there.
    state = analysis.make_state()
    for op in top_level_ops(script):
        engine.run_op(op, state, recoverable=False)
    return state.steps


def flatten_pipeline(steps: Iterable[PipelineStep]) -> List[StepLike]:
    """Branch tree -> flat list (regions concatenated in order)."""
    out: List[StepLike] = []
    for step in steps:
        if isinstance(step, PipelineBranch):
            for region in step.regions:
                out.extend(flatten_pipeline(region))
        else:
            out.append(step)
    return out


def extract_pipeline_from_script(script: Operation) -> List[StepLike]:
    """Collect the checkable transform steps of a script, in order.

    ``apply_registered_pass`` steps resolve to the pass's conditions;
    other transform ops with declared conditions participate too (so
    loop transforms on ``scf.for`` after ``convert-scf-to-cf`` are
    flagged as phase-ordering violations). The flat view of
    :func:`extract_pipeline_tree`.
    """
    return flatten_pipeline(extract_pipeline_tree(script))


# -- checking -----------------------------------------------------------------


class _SpecInterpreter:
    """Abstractly interprets steps over the set of present op specs."""

    def __init__(self, report: PipelineReport):
        self.report = report
        self.position = 0

    def run(self, steps: Sequence[PipelineStep],
            present: Set[str]) -> Set[str]:
        for step in steps:
            if isinstance(step, PipelineBranch):
                outcomes = [
                    self.run(region, set(present))
                    for region in step.regions
                ]
                # Exactly one region executes; the union of outcomes
                # over-approximates what may be present afterwards.
                if outcomes:
                    present = set().union(*outcomes)
                continue
            present = self._apply(step, present)
        return present

    def _apply(self, step: StepLike, present: Set[str]) -> Set[str]:
        from ..core.conditions import TransformConditions, pass_conditions

        position = self.position
        self.position += 1
        conditions = (
            step if isinstance(step, TransformConditions)
            else pass_conditions(step)
        )
        if conditions is None:
            name = step if isinstance(step, str) else "<unknown>"
            self.report.issues.append(
                PipelineIssue(
                    IssueKind.UNKNOWN_CONDITIONS,
                    f"no declared conditions for {name!r}; treating as "
                    "identity",
                    position,
                    str(name),
                )
            )
            self.report.trace.append((name, set(), set()))
            return present
        removed = conditions.removes(present)
        if not removed and conditions.preconditions:
            self.report.issues.append(
                PipelineIssue(
                    IssueKind.PHASE_ORDERING,
                    f"preconditions {sorted(conditions.preconditions)} "
                    "match nothing at this point — the transform is dead "
                    "or mis-ordered",
                    position,
                    conditions.name,
                )
            )
        present = (present - removed) | set(conditions.postconditions)
        self.report.trace.append((conditions.name, removed,
                                  set(conditions.postconditions)))
        return present


def check_pipeline(
    steps: Sequence[PipelineStep],
    input_specs: Iterable[str],
    final_allowed: Iterable[str] = ("llvm.*",),
) -> PipelineReport:
    """Statically check a pipeline of pass names / condition objects.

    ``input_specs`` is the set of op names initially present;
    ``final_allowed`` the specs permitted after the pipeline. Steps may
    include :class:`PipelineBranch` nodes (alternatives regions), whose
    regions are checked independently and joined as a union.
    """
    from ..core.conditions import spec_subsumes

    report = PipelineReport()
    allowed = list(final_allowed)
    present = _SpecInterpreter(report).run(steps, set(input_specs))
    report.final_specs = set(present)
    leftover = {
        spec
        for spec in present
        if not any(spec_subsumes(allow, spec) for allow in allowed)
    }
    for spec in sorted(leftover):
        producer = _find_producer(report.trace, spec)
        suffix = f" (introduced by {producer})" if producer else ""
        report.issues.append(
            PipelineIssue(
                IssueKind.LEFTOVER,
                f"operation '{spec}' remains after the pipeline but the "
                f"final target only allows {sorted(allowed)}{suffix}",
            )
        )
    return report


def _find_producer(trace: List[tuple], spec: str) -> Optional[str]:
    from ..core.conditions import spec_subsumes

    producer = None
    for name, _removed, added in trace:
        if any(spec_subsumes(a, spec) or a == spec for a in added):
            producer = name
    return producer


def check_transform_script(
    script: Operation,
    input_specs: Iterable[str],
    final_allowed: Iterable[str] = ("llvm.*",),
    entry_point: Optional[str] = None,
) -> PipelineReport:
    """Statically check the pipeline embedded in a transform script,
    branch-aware: alternatives regions are checked as alternatives."""
    return check_pipeline(
        extract_pipeline_tree(script, entry_point),
        input_specs,
        final_allowed,
    )


__all__ = [
    "IssueKind",
    "PipelineBranch",
    "PipelineIssue",
    "PipelineReport",
    "PipelineStep",
    "StepLike",
    "check_pipeline",
    "check_transform_script",
    "extract_pipeline_from_script",
    "extract_pipeline_tree",
    "flatten_pipeline",
]
