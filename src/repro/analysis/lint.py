"""``repro-lint``: the transform-script static analysis driver.

Bundles every static check into one MLIR-style diagnostic stream
(:class:`~repro.ir.diagnostics.DiagnosticEngine`):

* interprocedural use-after-consume (:mod:`repro.analysis.invalidation`)
  — ``error:`` at the using op with ``note:``\\ s at the consuming op
  and (for include call sites) the in-body consumer;
* structural checks — ``transform.include`` without a resolvable
  ``target``;
* dead handles — navigation/query ops none of whose results are used;
* dead macros — ``named_sequence`` definitions never included and not
  the entry point;
* optionally (when payload specs are given) the §3.3 pipeline
  condition check, branch-aware.

Usage::

    repro-lint schedule.mlir
    repro-lint schedule.mlir --payload payload.mlir
    python -m repro.analysis.lint schedule.mlir --werror
"""

from __future__ import annotations

import argparse
import sys
from typing import Iterable, List, Optional

from ..ir.core import Operation
from ..ir.diagnostics import Diagnostic, DiagnosticEngine, Severity
from .dataflow import find_entry
from .invalidation import ERROR, InvalidationIssue, analyze_script
from .pipeline import IssueKind, check_transform_script

#: Ops whose only observable effect is producing result handles: with
#: every result unused they are dead weight in the schedule.
RESULT_ONLY_OPS = frozenset({
    "transform.match_op",
    "transform.get_parent_op",
    "transform.select",
    "transform.cast",
    "transform.merge_handles",
    "transform.split_handle",
    "transform.param.constant",
    "transform.num_payload_ops",
})


def emit_invalidation_diagnostics(
    issues: Iterable[InvalidationIssue],
    engine: DiagnosticEngine,
) -> None:
    """Render analysis issues as error/note (or warning/note) chains."""
    for issue in issues:
        severity = (Severity.ERROR if issue.severity == ERROR
                    else Severity.WARNING)
        diagnostic = Diagnostic(
            severity,
            f"'{issue.use_op.name}' uses an invalidated handle: "
            f"{issue.message}",
            issue.use_op.location,
        )
        diagnostic.attach_note(
            f"handle was consumed here by '{issue.consume_op.name}'",
            issue.consume_op.location,
        )
        if issue.via is not None:
            diagnostic.attach_note(
                f"inside the included sequence, consumed by "
                f"'{issue.via.name}'",
                issue.via.location,
            )
        engine.emit(diagnostic)


def _lint_structure(script: Operation, engine: DiagnosticEngine) -> None:
    from ..ir.context import lookup_symbol

    for op in script.walk():
        if op.name != "transform.include":
            continue
        target = op.attr("target")
        name = getattr(target, "name", None)
        if name is None:
            engine.error("transform.include without a 'target' symbol",
                         op.location)
        elif lookup_symbol(op, name) is None:
            engine.error(f"transform.include of unknown symbol @{name}",
                         op.location)


def _lint_dead_handles(script: Operation,
                       engine: DiagnosticEngine) -> None:
    for op in script.walk():
        if op.name not in RESULT_ONLY_OPS or not op.results:
            continue
        if not any(result.has_uses() for result in op.results):
            engine.warning(
                f"dead handle: no result of '{op.name}' is ever used",
                op.location,
            )


def _lint_dead_macros(script: Operation, engine: DiagnosticEngine,
                      entry_point: Optional[str]) -> None:
    included = set()
    for op in script.walk():
        if op.name == "transform.include":
            name = getattr(op.attr("target"), "name", None)
            if name is not None:
                included.add(name)
    entry = find_entry(script, entry_point)
    for op in script.walk():
        if op.name != "transform.named_sequence" or op is entry:
            continue
        sym = getattr(op.attr("sym_name"), "value", None)
        if sym is not None and sym not in included:
            engine.warning(
                f"named sequence @{sym} is never included and is not "
                "the entry point",
                op.location,
            )


def _lint_pipeline(script: Operation, engine: DiagnosticEngine,
                   payload_specs: Iterable[str],
                   final_allowed: Iterable[str],
                   entry_point: Optional[str]) -> None:
    report = check_transform_script(script, payload_specs,
                                    final_allowed, entry_point)
    for issue in report.issues:
        if issue.kind is IssueKind.UNKNOWN_CONDITIONS:
            engine.remark(str(issue), script.location)
        else:
            engine.error(str(issue), script.location)


def lint_script(
    script: Operation,
    payload_specs: Optional[Iterable[str]] = None,
    final_allowed: Iterable[str] = ("llvm.*",),
    entry_point: Optional[str] = None,
    engine: Optional[DiagnosticEngine] = None,
    may_alias: bool = False,
) -> DiagnosticEngine:
    """Run every static check over ``script``; returns the engine.

    ``may_alias=True`` additionally reports the coarse worst-case
    aliasing warnings the differential fuzz oracle relies on (noisy for
    human consumption, hence off by default).
    """
    engine = engine or DiagnosticEngine()
    issues = analyze_script(script, may_alias=may_alias)
    emit_invalidation_diagnostics(issues, engine)
    _lint_structure(script, engine)
    _lint_dead_handles(script, engine)
    _lint_dead_macros(script, engine, entry_point)
    if payload_specs is not None:
        _lint_pipeline(script, engine, payload_specs, final_allowed,
                       entry_point)
    return engine


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="statically analyze a transform script: "
        "use-after-consume (interprocedural), structure, dead handles, "
        "and optionally the pipeline condition check",
    )
    parser.add_argument("script",
                        help="transform script IR file ('-' = stdin)")
    parser.add_argument("--payload", default=None,
                        help="payload IR file: enables the pipeline "
                        "condition check against its op specs")
    parser.add_argument("--entry-point", default=None,
                        help="named sequence acting as the entry point")
    parser.add_argument("--final-allowed", action="append", default=None,
                        metavar="SPEC",
                        help="op spec allowed after the pipeline "
                        "(repeatable; default: llvm.*)")
    parser.add_argument("--may-alias", action="store_true",
                        help="also report worst-case aliasing warnings")
    parser.add_argument("--werror", action="store_true",
                        help="treat warnings as errors")
    args = parser.parse_args(argv)

    import repro.core  # noqa: F401 — registers transform ops
    import repro.dialects  # noqa: F401 — registers payload ops
    import repro.passes  # noqa: F401 — registers passes
    from ..core.conditions import payload_op_specs
    from ..ir.parser import parse

    script_text = (sys.stdin.read() if args.script == "-"
                   else open(args.script).read())
    script = parse(script_text, "<script>" if args.script == "-"
                   else args.script)
    payload_specs = None
    if args.payload is not None:
        payload_specs = payload_op_specs(
            parse(open(args.payload).read(), args.payload)
        )
    engine = lint_script(
        script,
        payload_specs=payload_specs,
        final_allowed=args.final_allowed or ("llvm.*",),
        entry_point=args.entry_point,
        may_alias=args.may_alias,
    )
    if engine.diagnostics:
        print(engine.render())
    failed = engine.has_errors() or (args.werror and engine.warnings)
    if failed:
        return 1
    print(f"{args.script}: no issues found"
          if not engine.diagnostics else
          f"{args.script}: no errors (warnings above)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
