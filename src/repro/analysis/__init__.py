"""Static analysis of transform scripts (paper §3.3/§3.4).

Transform IR is ordinary IR, so script bugs are caught *statically*,
before any payload exists:

* :mod:`repro.analysis.dataflow` — a small forward dataflow engine
  walking scripts in execution order with per-region fact snapshots;
* :mod:`repro.analysis.invalidation` — interprocedural,
  alternatives-aware use-after-consume ("use after free" over handles);
* :mod:`repro.analysis.pipeline` — call-site-ordered pipeline
  extraction and the §3.3 pre/postcondition check, branch-aware;
* :mod:`repro.analysis.effects` — the shared silenceable-failure model;
* :mod:`repro.analysis.lint` — the ``repro-lint`` driver tying it all
  into one MLIR-style diagnostic stream.

The dynamic counterpart lives in the interpreter
(:class:`~repro.core.state.TransformState` invalidation tracking); the
differential fuzzer (``python -m repro.testing.fuzz --differential``)
asserts the two agree: every dynamic invalidation error is predicted
statically, and no definite static error fires on a schedule that
executes cleanly.
"""

from .dataflow import (
    AbstractState,
    ForwardAnalysis,
    ForwardEngine,
    Reach,
    find_entry,
    top_level_ops,
)
from .effects import always_fails, may_fail_silenceably
from .invalidation import (
    ERROR,
    WARNING,
    Consumption,
    HandleState,
    InvalidationAnalysis,
    InvalidationIssue,
    NamedSequenceSummary,
    analyze_script,
)
from .lint import emit_invalidation_diagnostics, lint_script
from .pipeline import (
    IssueKind,
    PipelineBranch,
    PipelineIssue,
    PipelineReport,
    check_pipeline,
    check_transform_script,
    extract_pipeline_from_script,
    extract_pipeline_tree,
    flatten_pipeline,
)

__all__ = [
    "AbstractState",
    "Consumption",
    "ERROR",
    "ForwardAnalysis",
    "ForwardEngine",
    "HandleState",
    "InvalidationAnalysis",
    "InvalidationIssue",
    "IssueKind",
    "NamedSequenceSummary",
    "PipelineBranch",
    "PipelineIssue",
    "PipelineReport",
    "Reach",
    "WARNING",
    "always_fails",
    "analyze_script",
    "check_pipeline",
    "check_transform_script",
    "emit_invalidation_diagnostics",
    "extract_pipeline_from_script",
    "extract_pipeline_tree",
    "find_entry",
    "flatten_pipeline",
    "lint_script",
    "may_fail_silenceably",
    "top_level_ops",
]
