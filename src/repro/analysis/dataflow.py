"""A small forward dataflow engine over transform IR (paper §3.3/§3.4).

The engine walks a transform script in *execution order* — the same
order :class:`~repro.core.interpreter.TransformInterpreter` would apply
it — and threads an :class:`AbstractState` through every op. Clients
(the use-after-consume analysis in :mod:`repro.analysis.invalidation`
and the pipeline extractor in :mod:`repro.analysis.pipeline`) subclass
:class:`ForwardAnalysis` and provide the transfer functions; the engine
owns the control-flow structure:

* ``transform.sequence`` bodies run inline on the current state; a
  ``failures = "suppress"`` sequence makes its body *recoverable*
  (silenceable failures inside it do not abort the enclosing run);
* ``transform.alternatives`` forks the **pre-op snapshot** into each
  region, analyzes regions independently, and joins facts only from
  regions that can complete — mirroring the transactional rollback of
  :class:`~repro.core.transaction.PayloadTransaction`;
* ``transform.foreach`` analyzes its body once from a *may*-reach fork
  and joins the exit facts weakly (the loop may run zero times); an
  optional second pass catches cross-iteration issues;
* ``transform.include`` is delegated to the client, which may apply a
  callee summary (invalidation) or inline the callee (extraction);
* ``transform.named_sequence`` definitions encountered inline are
  *skipped* — they are macro definitions, analyzed at include sites or
  standalone, never as straight-line code.

Reachability is tracked as MUST/MAY plus a *skip token* counter: the
counter bumps after every op that may fail silenceably while inside a
recoverable scope. A consumption fact recorded at token ``t`` is only a
*definite* error for a use still at token ``t`` — any possible
silenceable skip between consume and use downgrades the diagnostic to a
warning, which is exactly the precision contract the differential
fuzzer (``repro.testing.fuzz --differential``) enforces.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Tuple

from ..ir.core import Block, Operation
from . import effects


class Reach(enum.Enum):
    """How surely control reaches a program point on a *clean* run."""

    MUST = "must"
    MAY = "may"


class AbstractState:
    """Base class for per-point dataflow facts.

    Subclasses add their domain (handle facts, pipeline steps, ...) and
    must deep-copy it in :meth:`copy`; the three fields here are owned
    by the engine.
    """

    def __init__(self) -> None:
        self.reach: Reach = Reach.MUST
        #: Counts possible silenceable-skip points passed so far while
        #: in a recoverable scope (see module docstring).
        self.skip_tokens: int = 0
        #: Set when the remainder of the current walk is dead code
        #: (an always-failing op was just executed).
        self.terminated: bool = False

    def copy(self) -> "AbstractState":
        raise NotImplementedError

    def _copy_base_into(self, other: "AbstractState") -> None:
        other.reach = self.reach
        other.skip_tokens = self.skip_tokens
        other.terminated = self.terminated


class ForwardAnalysis:
    """Transfer functions supplied by an engine client."""

    #: Re-run foreach bodies once more from the joined exit state so
    #: facts from iteration *n* flow into uses in iteration *n + 1*.
    foreach_second_pass = False

    def make_state(self) -> AbstractState:
        raise NotImplementedError

    def enter_block(self, block: Block, state: AbstractState) -> None:
        """Called before a block's ops run (define block arguments)."""

    def before_regions(self, op: Operation, state: AbstractState,
                       recoverable: bool) -> None:
        """Op transfer, part 1: runs before any region of ``op``."""

    def after_regions(self, op: Operation, state: AbstractState,
                      recoverable: bool) -> None:
        """Op transfer, part 2: runs after the regions, before the
        engine accounts for ``op``'s own failure effect."""

    def enter_alternatives_region(self, op: Operation, index: int,
                                  block: Block,
                                  state: AbstractState) -> None:
        """Called on each region's forked state before it runs."""

    def join_alternatives(
        self, op: Operation, state: AbstractState,
        exits: List[Tuple[int, Optional[AbstractState]]],
    ) -> None:
        """Fold region exit states into ``state`` (the post-op state).

        ``exits`` holds ``(region_index, exit_state)`` for every region
        that can complete; ``exit_state`` is ``None`` for an empty
        fallback region (it completes with the pre-op facts untouched).
        """

    def join_foreach(self, op: Operation, state: AbstractState,
                     exit_state: Optional[AbstractState]) -> None:
        """Fold the body's exit facts into the post-op state.

        ``exit_state`` is ``None`` when the body can never complete —
        then the only runs continuing past ``op`` saw zero iterations
        and no body fact escapes.
        """

    def on_include(self, op: Operation, state: AbstractState,
                   engine: "ForwardEngine", recoverable: bool) -> None:
        """Apply the effect of a ``transform.include`` call site."""


class ForwardEngine:
    """Drives a :class:`ForwardAnalysis` over a script in execution
    order, maintaining reachability and per-region fact snapshots."""

    def __init__(self, analysis: ForwardAnalysis):
        self.analysis = analysis

    # -- entry points --------------------------------------------------------

    def run_entry(self, entry: Operation) -> AbstractState:
        """Analyze a ``sequence``/``named_sequence`` entry point."""
        state = self.analysis.make_state()
        if not entry.regions or not entry.regions[0].blocks:
            return state
        if entry.name == "transform.named_sequence":
            recoverable = True  # callers may recover from body failures
        else:
            recoverable = effects.sequence_suppresses(entry)
        self.run_block(entry.regions[0].entry_block, state, recoverable)
        return state

    # -- traversal ------------------------------------------------------------

    def run_block(self, block: Block, state: AbstractState,
                  recoverable: bool) -> bool:
        """Run a block's ops through the analysis.

        Returns False when the block can never complete (an op on the
        straight-line path always fails); ops past that point are dead.
        """
        self.analysis.enter_block(block, state)
        for op in list(block.ops):
            if op.name == "transform.yield":
                # Yield operands are read by the parent op when it maps
                # its results — that read is a use.
                self.analysis.before_regions(op, state, recoverable)
                break
            self.run_op(op, state, recoverable)
            if state.terminated:
                state.terminated = False
                return False
        return True

    def run_op(self, op: Operation, state: AbstractState,
               recoverable: bool) -> None:
        analysis = self.analysis
        analysis.before_regions(op, state, recoverable)

        if op.name == "transform.alternatives":
            self._run_alternatives(op, state)
        elif op.name == "transform.foreach":
            self._run_foreach(op, state, recoverable)
        elif op.name == "transform.include":
            analysis.on_include(op, state, self, recoverable)
        elif op.name == "transform.named_sequence":
            pass  # a macro definition, not straight-line code
        elif op.name == "transform.apply_patterns":
            pass  # body holds pattern markers, not transforms
        elif op.regions:
            # Generic region op (nested sequence, unknown op with a
            # body): run inline on the shared state.
            inner_recoverable = (recoverable
                                 or effects.sequence_suppresses(op))
            completed = True
            for region in op.regions:
                for block in region.blocks:
                    if not self.run_block(block, state, inner_recoverable):
                        completed = False
                        break
                if not completed:
                    break
            if not completed and not effects.sequence_suppresses(op):
                state.terminated = True

        analysis.after_regions(op, state, recoverable)
        if state.terminated:
            return
        if effects.always_fails(op):
            state.terminated = True
            return
        if recoverable and effects.may_fail_silenceably(op):
            state.skip_tokens += 1

    def _run_alternatives(self, op: Operation,
                          state: AbstractState) -> None:
        """Fork the pre-op snapshot per region; join completing exits."""
        if not op.regions:
            return
        analysis = self.analysis
        exits: List[Tuple[int, Optional[AbstractState]]] = []
        for index, region in enumerate(op.regions):
            block = region.blocks[0] if region.blocks else None
            if block is None or not block.ops:
                # The empty always-succeeding fallback: completes with
                # the pre-op facts unchanged.
                exits.append((index, None))
                continue
            branch = state.copy()
            if index > 0:
                # Later regions only run after an earlier one failed.
                branch.reach = Reach.MAY
            analysis.enter_alternatives_region(op, index, block, branch)
            if self.run_block(block, branch, recoverable=True):
                exits.append((index, branch))
        if not exits:
            # Every region fails on its straight-line path: the op as a
            # whole always fails.
            state.terminated = True
            return
        analysis.join_alternatives(op, state, exits)

    def _run_foreach(self, op: Operation, state: AbstractState,
                     recoverable: bool) -> None:
        body = None
        if op.regions and op.regions[0].blocks:
            body = op.regions[0].blocks[0]
        if body is None or not body.ops:
            return
        branch = state.copy()
        branch.reach = Reach.MAY  # the loop may run zero times
        completed = self.run_block(body, branch, recoverable)
        self.analysis.join_foreach(op, state,
                                   branch if completed else None)
        if completed and self.analysis.foreach_second_pass:
            # Cross-iteration pass: facts from a completed iteration
            # reach the next iteration's uses.
            second = state.copy()
            second.reach = Reach.MAY
            self.run_block(body, second, recoverable)


# -- script structure helpers ------------------------------------------------


def top_level_ops(script: Operation) -> List[Operation]:
    """The script's immediate ops (the entry-point candidates)."""
    if script.name in ("transform.sequence", "transform.named_sequence"):
        return [script]
    ops: List[Operation] = []
    for region in script.regions:
        for block in region.blocks:
            ops.extend(block.ops)
    return ops


def find_entry(script: Operation,
               entry_point: Optional[str] = None) -> Optional[Operation]:
    """The op the interpreter would execute — mirrors
    ``TransformInterpreter._find_entry``: only top-level ops are
    candidates, a ``transform.sequence`` wins over named sequences, and
    ``entry_point`` selects a named sequence by symbol name."""
    if script.name in ("transform.sequence", "transform.named_sequence"):
        return script
    sequences: List[Operation] = []
    named: List[Operation] = []
    for op in top_level_ops(script):
        if op.name == "transform.sequence":
            sequences.append(op)
        elif op.name == "transform.named_sequence":
            named.append(op)
    if entry_point is not None:
        for candidate in named:
            name = candidate.attr("sym_name")
            if name is not None and getattr(name, "value", None) == entry_point:
                return candidate
        return None
    if sequences:
        return sequences[0]
    return named[0] if named else None
