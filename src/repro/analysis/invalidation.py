"""Interprocedural use-after-consume analysis (paper §3.4).

Transform scripts are ordinary SSA IR, so use-after-consume of handles
is an off-the-shelf "use after free" dataflow problem: handle
definitions are allocations, consumption is a free, and handles to
nested/equal payload alias their source. This module runs that
analysis on the :class:`~repro.analysis.dataflow.ForwardEngine`
*without executing anything* — catching, e.g., the double-unroll of
Fig. 1 line 11 at script-verification time.

Beyond the intraprocedural core, the analysis is:

* **interprocedural** — every ``transform.named_sequence`` body is
  analyzed once into a :class:`NamedSequenceSummary` (which block args
  it consumes, what its yields alias, whether the body can complete);
  the summary is applied at every ``transform.include`` site, so a
  macro that consumes its argument produces a diagnostic *at the call
  site*. Recursion is cut off conservatively (every argument
  may-consumed, results fresh);
* **alternatives-aware** — each region starts from the pre-op fact
  snapshot and facts join only from regions that can complete,
  matching the transactional rollback of ``PayloadTransaction``: a
  handle consumed in region 1 is legal to use in region 2;
* **severity-graded** — an issue is an ``"error"`` only when the
  consumption *must* happen on every clean run reaching the use
  (same skip-token count, no branch join in between); everything
  weaker is a ``"warning"``. The differential fuzzer checks exactly
  this contract: dynamic invalidation errors are always predicted
  (any severity), and cleanly-executing schedules never carry an
  ``"error"``.

Alias edges come in two flavours, mirroring the dynamic semantics
(consuming a handle invalidates handles to the *same* payload ops or
ops *nested in* them, but not enclosing ones):

* **nested** edges (``match_op``: the result points strictly inside
  the operand's payload) — consumption flows source -> derived only;
* **subset** edges (``foreach`` block arguments, ``split_handle``,
  ``merge_handles``, ``cast``: the result points at the same payload
  ops) — consumption flows both ways.

With ``may_alias=True`` the analysis additionally over-approximates
*undeclared* aliasing: two independently-matched handles can point at
overlapping payload, so consuming any handle may-invalidates every
other live non-parameter handle except the sequence root (payload
roots are strict ancestors of anything consumed, and ancestors are
never invalidated). Those coarse facts only ever produce warnings,
but they make the analysis *sound* against the dynamic semantics —
the property the differential fuzzer asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..ir.core import Block, Operation, Value
from .dataflow import (
    AbstractState,
    ForwardAnalysis,
    ForwardEngine,
    Reach,
    top_level_ops,
)

#: result payload strictly nested in operand payload.
DERIVES_NESTED = frozenset({"transform.match_op"})

#: result payload equal to (a subset of) operand payload.
DERIVES_SUBSET = frozenset({
    "transform.cast",
    "transform.merge_handles",
    "transform.select",
    "transform.split_handle",
})

#: operand payload strictly nested in *result* payload (upward
#: navigation): consuming the result invalidates the operand.
DERIVES_ENCLOSING = frozenset({"transform.get_parent_op"})

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Consumption:
    """The fact "this handle's payload was (maybe) consumed"."""

    op: Operation            #: the consuming op as seen at this level
    must: bool               #: consumed on every clean path to here?
    kind: str                #: "direct" | "alias" | "call" | "may-alias"
    token: int               #: skip-token count at the consume point
    reach: Reach             #: reachability of the consume point
    via: Optional[Operation] = None  #: in-body consumer for kind "call"
    branch_joined: bool = False      #: crossed a region join?


@dataclass
class InvalidationIssue:
    """One use-after-consume diagnosis."""

    message: str
    use_op: Operation
    consume_op: Operation
    severity: str = ERROR
    kind: str = "direct"
    #: For issues reported at an include call site: the op inside the
    #: named-sequence body that actually consumes.
    via: Optional[Operation] = None

    def __str__(self) -> str:
        return (
            f"'{self.use_op.name}' uses a handle invalidated by "
            f"'{self.consume_op.name}': {self.message}"
        )


@dataclass(frozen=True)
class SummaryConsumption:
    """Summary entry: including this sequence consumes argument i."""

    must: bool
    via: Optional[Operation] = None


@dataclass
class NamedSequenceSummary:
    """What a ``named_sequence`` body does to its arguments/results."""

    #: arg index -> consumption fact (absent = never consumed).
    arg_consumptions: Dict[int, SummaryConsumption] = field(
        default_factory=dict
    )
    #: Per yielded result: ("fresh", None) | ("subset"|"nested", arg i).
    yields: List[Tuple[str, Optional[int]]] = field(default_factory=list)
    #: Does the body consume *any* handle (argument or internal)?
    #: Internal consumption still may-invalidates the caller's handles.
    consumes_anything: bool = False
    #: The body's straight-line path hits an always-failing op.
    always_fails: bool = False
    #: Cut off at a recursive include (maximally conservative).
    recursive: bool = False


class HandleState(AbstractState):
    """Per-point facts: live handles, derivation edges, consumption."""

    def __init__(self) -> None:
        super().__init__()
        #: source -> values whose payload is nested in (or equal to) it.
        self.downward: Dict[int, List[Value]] = {}
        #: id -> live value, in definition order.
        self.defined: Dict[int, Value] = {}
        #: Handles whose payload is the payload root (never invalidated:
        #: the root is a strict ancestor of anything consumed).
        self.root_like: Set[int] = set()
        #: id -> consumption fact.
        self.consumed: Dict[int, Consumption] = {}

    def copy(self) -> "HandleState":
        other = HandleState()
        self._copy_base_into(other)
        other.downward = {k: list(v) for k, v in self.downward.items()}
        other.defined = dict(self.defined)
        other.root_like = set(self.root_like)
        other.consumed = dict(self.consumed)
        return other

    def define(self, value: Value) -> None:
        self.defined[id(value)] = value

    def add_nested(self, source: Value, result: Value) -> None:
        self.downward.setdefault(id(source), []).append(result)

    def add_subset(self, a: Value, b: Value) -> None:
        # Subset aliases receive downward consumption from each other's
        # sources; mutual nested edges keep the closure simple.
        self.downward.setdefault(id(a), []).append(b)
        self.downward.setdefault(id(b), []).append(a)

    def invalidation_set(self, value: Value) -> List[Value]:
        """Everything invalidated when ``value`` is consumed: the value,
        its subset aliases, and all transitively nested handles."""
        out: List[Value] = [value]
        seen: Set[int] = {id(value)}
        stack = [value]
        while stack:
            current = stack.pop()
            for child in self.downward.get(id(current), []):
                if id(child) not in seen:
                    seen.add(id(child))
                    out.append(child)
                    stack.append(child)
        return out


class InvalidationAnalysis(ForwardAnalysis):
    """The use-after-consume client of the dataflow engine."""

    foreach_second_pass = True

    def __init__(self, may_alias: bool = True,
                 interprocedural: bool = True):
        self.may_alias = may_alias
        self.interprocedural = interprocedural
        self.issues: List[InvalidationIssue] = []
        self._reported: Set[Tuple[int, int, int]] = set()
        self._summaries: Dict[int, NamedSequenceSummary] = {}
        self._in_progress: Set[int] = set()

    # -- state ----------------------------------------------------------------

    def make_state(self) -> HandleState:
        return HandleState()

    def enter_block(self, block: Block, state: AbstractState) -> None:
        assert isinstance(state, HandleState)
        parent = block.parent_op
        root = parent is not None and parent.name == "transform.sequence"
        for arg in block.args:
            state.define(arg)
            if root:
                # The sequence root handle maps the whole payload: a
                # strict ancestor of any consumed op, never invalidated.
                state.root_like.add(id(arg))

    # -- transfer -------------------------------------------------------------

    def before_regions(self, op: Operation, state: AbstractState,
                       recoverable: bool) -> None:
        assert isinstance(state, HandleState)
        for operand in op.operands:
            fact = state.consumed.get(id(operand))
            if fact is not None:
                self._report(op, operand, fact, state)
        if op.name in DERIVES_NESTED:
            for operand in op.operands:
                for result in op.results:
                    state.add_nested(operand, result)
        elif op.name in DERIVES_SUBSET:
            for operand in op.operands:
                for result in op.results:
                    state.add_subset(operand, result)
        elif op.name in DERIVES_ENCLOSING:
            for operand in op.operands:
                for result in op.results:
                    state.add_nested(result, operand)
        elif op.name == "transform.foreach":
            # Block arguments alias the iterated operands positionally.
            if op.regions and op.regions[0].blocks:
                body = op.regions[0].blocks[0]
                for operand, arg in zip(op.operands, body.args):
                    state.add_subset(operand, arg)

    def after_regions(self, op: Operation, state: AbstractState,
                      recoverable: bool) -> None:
        assert isinstance(state, HandleState)
        consumes = getattr(type(op), "CONSUMES", ())
        closure_ids: Set[int] = set()
        if consumes:
            token = state.skip_tokens
            for index in consumes:
                if index >= op.num_operands:
                    continue
                value = op.operand(index)
                for aliased in state.invalidation_set(value):
                    closure_ids.add(id(aliased))
                    self._mark(state, aliased, Consumption(
                        op=op, must=True,
                        kind="direct" if aliased is value else "alias",
                        token=token, reach=state.reach,
                    ))
            if self.may_alias:
                self._mark_may_aliases(state, op, closure_ids, token)
        for result in op.results:
            state.define(result)

    def enter_alternatives_region(self, op: Operation, index: int,
                                  block: Block,
                                  state: AbstractState) -> None:
        assert isinstance(state, HandleState)
        # A region block argument re-binds the scoped operand's payload.
        if block.args and op.num_operands:
            state.add_subset(op.operand(0), block.args[0])

    # -- joins ----------------------------------------------------------------

    def join_alternatives(self, op, state, exits) -> None:
        assert isinstance(state, HandleState)
        tally: Dict[int, List[Consumption]] = {}
        for _index, exit_state in exits:
            if exit_state is None:
                continue  # empty fallback: completes, consumes nothing
            for vid, fact in exit_state.consumed.items():
                if vid in state.consumed or vid not in state.defined:
                    continue
                tally.setdefault(vid, []).append(fact)
        for vid, facts in tally.items():
            must = len(facts) == len(exits) and all(f.must for f in facts)
            state.consumed[vid] = replace(
                facts[0], must=must, branch_joined=True
            )
        self._map_region_yields(op, state, exits)

    def _map_region_yields(self, op, state: HandleState, exits) -> None:
        """Results of ``alternatives`` come from the winning region's
        yield: derive edges from the outer values they alias."""
        if not op.results:
            return
        for _index, exit_state in exits:
            if exit_state is None:
                continue
            region = op.regions[_index]
            terminator = (region.blocks[0].terminator
                          if region.blocks else None)
            if terminator is None or terminator.name != "transform.yield":
                continue
            for result, yielded in zip(op.results,
                                       terminator.operands):
                for source in self._alias_sources(exit_state, yielded,
                                                  state):
                    if source is yielded:
                        state.add_subset(source, result)
                    else:
                        state.add_nested(source, result)

    @staticmethod
    def _alias_sources(exit_state: HandleState, yielded: Value,
                       outer: HandleState) -> List[Value]:
        """Outer-scope values whose payload covers ``yielded``."""
        if id(yielded) in outer.defined:
            return [yielded]
        return [
            value for value in outer.defined.values()
            if any(member is yielded
                   for member in exit_state.invalidation_set(value))
        ]

    def join_foreach(self, op, state, exit_state) -> None:
        assert isinstance(state, HandleState)
        if exit_state is not None:
            for vid, fact in exit_state.consumed.items():
                if vid in state.consumed or vid not in state.defined:
                    continue
                # The loop may run zero times: weak update only.
                state.consumed[vid] = replace(
                    fact, must=False, branch_joined=True
                )
        # Results gather values yielded per iteration: payload nested
        # in (or equal to) the iterated operands' payload.
        for operand in op.operands:
            for result in op.results:
                state.add_nested(operand, result)

    # -- interprocedural ------------------------------------------------------

    def on_include(self, op: Operation, state: AbstractState,
                   engine: ForwardEngine, recoverable: bool) -> None:
        assert isinstance(state, HandleState)
        if not self.interprocedural:
            return
        callee = _resolve_include(op)
        if callee is None:
            return  # a definite error dynamically; nothing to track
        summary = self.summarize(callee, engine)
        token = state.skip_tokens
        marked: Set[int] = set()
        for arg_index, consumption in summary.arg_consumptions.items():
            if arg_index >= op.num_operands:
                continue
            value = op.operand(arg_index)
            for aliased in state.invalidation_set(value):
                marked.add(id(aliased))
                self._mark(state, aliased, Consumption(
                    op=op, must=consumption.must, kind="call",
                    token=token, reach=state.reach,
                    via=consumption.via,
                ))
        if summary.consumes_anything and self.may_alias:
            self._mark_may_aliases(state, op, marked, token)
        for result_index, (kind, arg_index) in enumerate(summary.yields):
            if result_index >= len(op.results):
                break
            if (kind == "fresh" or arg_index is None
                    or arg_index >= op.num_operands):
                continue
            source = op.operand(arg_index)
            if kind == "subset":
                state.add_subset(source, op.results[result_index])
            else:
                state.add_nested(source, op.results[result_index])
        if summary.always_fails:
            state.terminated = True

    def summarize(self, callee: Operation,
                  engine: ForwardEngine) -> NamedSequenceSummary:
        """Analyze a named sequence body once; cache the summary."""
        key = id(callee)
        cached = self._summaries.get(key)
        if cached is not None:
            return cached
        body = (callee.regions[0].entry_block
                if callee.regions and callee.regions[0].blocks else None)
        if key in self._in_progress:
            return _recursive_summary(body)
        self._in_progress.add(key)
        try:
            summary = self._summarize_body(body, engine)
        finally:
            self._in_progress.discard(key)
        self._summaries[key] = summary
        return summary

    def _summarize_body(self, body: Optional[Block],
                        engine: ForwardEngine) -> NamedSequenceSummary:
        summary = NamedSequenceSummary()
        if body is None:
            return summary
        state = self.make_state()
        completed = engine.run_block(body, state, recoverable=True)
        summary.always_fails = not completed
        summary.consumes_anything = any(
            fact.kind != "may-alias" for fact in state.consumed.values()
        )
        for index, arg in enumerate(body.args):
            fact = state.consumed.get(id(arg))
            if fact is None:
                continue
            must = (fact.must and not fact.branch_joined
                    and fact.kind != "may-alias")
            summary.arg_consumptions[index] = SummaryConsumption(
                must=must, via=fact.via or fact.op
            )
        terminator = body.terminator
        if completed and terminator is not None \
                and terminator.name == "transform.yield":
            arg_ids = {id(arg): i for i, arg in enumerate(body.args)}
            for yielded in terminator.operands:
                summary.yields.append(
                    _yield_spec(yielded, arg_ids, body.args, state)
                )
        return summary

    # -- fact helpers ---------------------------------------------------------

    def _mark(self, state: HandleState, value: Value,
              fact: Consumption) -> None:
        existing = state.consumed.get(id(value))
        if existing is None or (fact.must and not existing.must):
            state.consumed[id(value)] = fact

    def _mark_may_aliases(self, state: HandleState, op: Operation,
                          exclude: Set[int], token: int) -> None:
        """Consuming *any* handle may invalidate every other live
        handle: independently-matched handles can point at overlapping
        payload. Parameters carry no payload; root handles are strict
        ancestors of anything consumed and are never invalidated."""
        from ..core.types import ParamType

        for vid, value in state.defined.items():
            if (vid in exclude or vid in state.root_like
                    or vid in state.consumed
                    or isinstance(value.type, ParamType)):
                continue
            state.consumed[vid] = Consumption(
                op=op, must=False, kind="may-alias",
                token=token, reach=state.reach,
            )

    def _report(self, use_op: Operation, operand: Value,
                fact: Consumption, state: HandleState) -> None:
        key = (id(use_op), id(operand), id(fact.op))
        if key in self._reported:
            return
        self._reported.add(key)
        self.issues.append(InvalidationIssue(
            message=_issue_message(fact),
            use_op=use_op,
            consume_op=fact.op,
            severity=self._severity(state, fact),
            kind=fact.kind,
            via=fact.via,
        ))

    @staticmethod
    def _severity(state: HandleState, fact: Consumption) -> str:
        if (fact.must and not fact.branch_joined
                and fact.kind != "may-alias"
                and fact.reach is Reach.MUST
                and state.reach is Reach.MUST
                and state.skip_tokens == fact.token):
            return ERROR
        return WARNING


def _issue_message(fact: Consumption) -> str:
    if fact.kind == "may-alias":
        return ("handle may alias a payload consumed earlier in the "
                "script")
    if fact.kind == "call":
        consumer = fact.via.name if fact.via is not None else "a transform"
        qualifier = "is" if fact.must else "may be"
        return (f"handle {qualifier} consumed inside the included "
                f"named sequence (by '{consumer}')")
    if fact.must and not fact.branch_joined:
        return ("handle (or an aliasing handle) was consumed earlier "
                "in the script")
    return ("handle (or an aliasing handle) may have been consumed "
            "earlier in the script")


def _yield_spec(yielded: Value, arg_ids: Dict[int, int],
                args: Sequence[Value],
                state: HandleState) -> Tuple[str, Optional[int]]:
    index = arg_ids.get(id(yielded))
    if index is not None:
        return ("subset", index)
    for arg_index, arg in enumerate(args):
        if any(member is yielded
               for member in state.invalidation_set(arg)):
            return ("nested", arg_index)
    return ("fresh", None)


def _recursive_summary(body: Optional[Block]) -> NamedSequenceSummary:
    n_args = len(body.args) if body is not None else 0
    return NamedSequenceSummary(
        arg_consumptions={
            i: SummaryConsumption(must=False) for i in range(n_args)
        },
        consumes_anything=True,
        recursive=True,
    )


def _resolve_include(op: Operation) -> Optional[Operation]:
    from ..ir.context import lookup_symbol

    target = op.attr("target")
    name = getattr(target, "name", None)
    if name is None:
        return None
    callee = lookup_symbol(op, name)
    if callee is None or callee.name != "transform.named_sequence":
        return None
    return callee


def analyze_script(script: Operation, *, may_alias: bool = True,
                   interprocedural: bool = True
                   ) -> List[InvalidationIssue]:
    """Run the use-after-consume analysis over a whole script.

    Analyzes each *top-level* ``transform.sequence`` once (nested
    sequences run inline with their parent's facts, mirroring
    execution) and every ``named_sequence`` body exactly once via its
    summary. Returns issues in discovery order.
    """
    analysis = InvalidationAnalysis(may_alias=may_alias,
                                    interprocedural=interprocedural)
    engine = ForwardEngine(analysis)
    for op in top_level_ops(script):
        if op.name == "transform.sequence":
            engine.run_entry(op)
    for op in script.walk():
        if op.name == "transform.named_sequence":
            analysis.summarize(op, engine)
    return analysis.issues


__all__ = [
    "Consumption",
    "DERIVES_NESTED",
    "DERIVES_SUBSET",
    "ERROR",
    "WARNING",
    "HandleState",
    "InvalidationAnalysis",
    "InvalidationIssue",
    "NamedSequenceSummary",
    "SummaryConsumption",
    "analyze_script",
]
