"""TOSA graph generators matching the paper's per-model op counts.

| model                 | # ops (Table 1) | block style            |
|-----------------------|-----------------|------------------------|
| Squeezenet            | 126             | fire modules (convs)   |
| GPT-2                 | 2861            | attention + FFN        |
| Mobile BERT           | 4134            | bottlenecked attention |
| Whisper (decoder)     | 847             | cross-attention        |
| BERT-base-uncased     | 1182            | attention + FFN        |
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..dialects import builtin, func, tosa
from ..ir.builder import Builder
from ..ir.core import Operation, Value
from ..ir.types import F32, TensorType, tensor


@dataclass(frozen=True)
class ModelSpec:
    """A synthetic model: name, exact op count, block style."""

    name: str
    n_ops: int
    style: str  # "cnn" or "transformer"
    hidden: int = 64
    seq: int = 32


MODEL_SPECS: Dict[str, ModelSpec] = {
    "squeezenet": ModelSpec("squeezenet", 126, "cnn"),
    "gpt2": ModelSpec("gpt2", 2861, "transformer", hidden=64, seq=32),
    "mobilebert": ModelSpec("mobilebert", 4134, "transformer",
                            hidden=48, seq=32),
    "whisper_decoder": ModelSpec("whisper_decoder", 847, "transformer",
                                 hidden=64, seq=24),
    "bert_base": ModelSpec("bert_base", 1182, "transformer",
                           hidden=64, seq=32),
}


class _GraphBuilder:
    """Emits TOSA blocks until the target op count is reached."""

    def __init__(self, builder: Builder, spec: ModelSpec):
        self.builder = builder
        self.spec = spec
        self.emitted = 0

    def _op(self, short_name: str, operands: List[Value],
            result_type: TensorType, **attrs) -> Value:
        self.emitted += 1
        return tosa.op(self.builder, short_name, operands, result_type,
                       **attrs)

    def _const(self, result_type: TensorType) -> Value:
        self.emitted += 1
        return tosa.const(self.builder, result_type)

    def remaining(self, target: int) -> int:
        return target - self.emitted

    # -- blocks ---------------------------------------------------------------

    def conv_block(self, activation: Value) -> Value:
        """conv2d + clamp (+ bias add): 4 ops, the Squeezenet staple."""
        act_type = activation.type
        assert isinstance(act_type, TensorType)
        weights = self._const(tensor(3, 3, act_type.shape[-1],
                                     act_type.shape[-1],
                                     element_type=F32))
        conv = self._op("conv2d", [activation, weights], act_type)
        bias = self._const(tensor(act_type.shape[-1], element_type=F32))
        biased = self._op("add", [conv, bias], act_type)
        return self._op("clamp", [biased], act_type,
                        min_fp=0.0, max_fp=6.0)

    def fire_module(self, activation: Value) -> Value:
        """Squeeze conv + two expand convs + concat-ish merge."""
        squeezed = self.conv_block(activation)
        expanded_a = self.conv_block(squeezed)
        expanded_b = self.conv_block(squeezed)
        act_type = activation.type
        return self._op("add", [expanded_a, expanded_b], act_type)

    def attention_block(self, hidden_state: Value) -> Value:
        """Q/K/V/O matmuls + softmax + residual adds (~17 ops)."""
        state_type = hidden_state.type
        assert isinstance(state_type, TensorType)
        seq, dim = state_type.shape
        square = tensor(seq, seq, element_type=F32)

        def projection(source: Value) -> Value:
            weights = self._const(tensor(dim, dim, element_type=F32))
            return self._op("matmul", [source, weights], state_type)

        queries = projection(hidden_state)
        keys = projection(hidden_state)
        values = projection(hidden_state)
        keys_t = self._op("transpose", [keys],
                          tensor(dim, seq, element_type=F32), perms=[1, 0])
        scores = self._op("matmul", [queries, keys_t], square)
        weights = self._op("softmax", [scores], square)
        context = self._op("matmul", [weights, values], state_type)
        output = projection(context)
        return self._op("add", [hidden_state, output], state_type)

    def ffn_block(self, hidden_state: Value) -> Value:
        """Two projections + activation + residual (~8 ops)."""
        state_type = hidden_state.type
        assert isinstance(state_type, TensorType)
        seq, dim = state_type.shape
        wide = tensor(seq, dim * 2, element_type=F32)
        up_weights = self._const(tensor(dim, dim * 2, element_type=F32))
        up = self._op("matmul", [hidden_state, up_weights], wide)
        activated = self._op("tanh", [up], wide)
        down_weights = self._const(tensor(dim * 2, dim, element_type=F32))
        down = self._op("matmul", [activated, down_weights], state_type)
        return self._op("add", [hidden_state, down], state_type)

    def filler(self, hidden_state: Value, count: int) -> Value:
        """Exactly ``count`` elementwise ops to land on the target."""
        state_type = hidden_state.type
        current = hidden_state
        for index in range(count):
            short_name = ("add", "mul", "tanh", "abs")[index % 4]
            operands = (
                [current, current]
                if short_name in ("add", "mul")
                else [current]
            )
            current = self._op(short_name, operands, state_type)
        return current


def build_model(name: str) -> Operation:
    """Build the synthetic TOSA module for a Table-1 model."""
    spec = MODEL_SPECS[name]
    module = builtin.module()
    if spec.style == "cnn":
        input_type = tensor(1, 28, 28, 16, element_type=F32)
    else:
        input_type = tensor(spec.seq, spec.hidden, element_type=F32)
    function = func.func("main", [input_type], [input_type])
    module.body.append(function)
    builder = Builder.at_end(function.body)
    graph = _GraphBuilder(builder, spec)

    state = function.body.args[0]
    # Reserve one op for the final return-path identity below? No:
    # func.return is not a tosa op and Table 1 counts model ops.
    while True:
        if spec.style == "cnn":
            block_cost = 16  # fire module: 3 conv blocks + merge
            build_block: Callable[[Value], Value] = graph.fire_module
        else:
            block_cost = 19  # attention (13) + FFN (6)
            build_block = lambda s: graph.ffn_block(  # noqa: E731
                graph.attention_block(s)
            )
        if graph.remaining(spec.n_ops) < block_cost:
            break
        state = build_block(state)
    state = graph.filler(state, graph.remaining(spec.n_ops))
    func.return_(builder, [state])
    module.verify()
    return module


def count_ops(module: Operation, prefix: str = "tosa.") -> int:
    """Count ops with the given dialect prefix (Table 1's '# Ops')."""
    return sum(
        1 for op in module.walk() if op.name.startswith(prefix)
    )


def build_mlp_model(seq: int = 32, hidden: int = 64) -> Operation:
    """A single FFN/MLP block as a standalone module.

    This is the textual-path reference for the frontend-authored
    generator in :mod:`repro.mlmodels.frontend_models`; the parity test
    asserts digest equality between the two.
    """
    spec = ModelSpec("mlp", 6, "transformer", hidden=hidden, seq=seq)
    module = builtin.module()
    input_type = tensor(seq, hidden, element_type=F32)
    function = func.func("main", [input_type], [input_type])
    module.body.append(function)
    builder = Builder.at_end(function.body)
    graph = _GraphBuilder(builder, spec)
    state = graph.ffn_block(function.body.args[0])
    func.return_(builder, [state])
    module.verify()
    return module
