"""Frontend-authored model generators.

The same synthetic graphs as :mod:`repro.mlmodels.generators`, written
as traced Python instead of explicit builder calls. The MLP generator
is digest-identical to :func:`~repro.mlmodels.generators.build_mlp_model`
for the same config — the parity contract that lets frontend-authored
payloads share compile-service cache entries with textual ones.
"""

# NB: no ``from __future__ import annotations`` here — the traced
# functions' Tensor[...] annotations must evaluate eagerly to capture
# the enclosing generator's shape parameters.

from typing import Callable, Dict

from ..ir.core import Operation


def build_mlp_frontend(seq: int = 32, hidden: int = 64) -> Operation:
    """Trace a single FFN/MLP block (two projections + tanh +
    residual), mirroring ``_GraphBuilder.ffn_block`` op for op."""
    from .. import frontend as fe

    @fe.jit(name="main")
    def mlp(x: fe.Tensor[seq, hidden]):
        up_weights = fe.ops.const((hidden, 2 * hidden))
        up = fe.ops.matmul(x, up_weights)
        activated = fe.ops.tanh(up)
        down_weights = fe.ops.const((2 * hidden, hidden))
        down = fe.ops.matmul(activated, down_weights)
        return x + down

    return mlp.trace()


def build_conv_frontend(size: int = 28, channels: int = 16) -> Operation:
    """Trace one conv block (conv2d + bias add + relu6 clamp) in the
    NHWC convention of ``_GraphBuilder.conv_block``."""
    from .. import frontend as fe

    @fe.jit(name="main")
    def conv(x: fe.Tensor[1, size, size, channels]):
        weights = fe.ops.const((3, 3, channels, channels))
        convolved = fe.ops.conv2d(x, weights)
        bias = fe.ops.const((channels,))
        biased = convolved + bias
        return fe.ops.clamp(biased, min_fp=0.0, max_fp=6.0)

    return conv.trace()


#: Frontend-authored generators, keyed like ``MODEL_SPECS``.
FRONTEND_GENERATORS: Dict[str, Callable[..., Operation]] = {
    "mlp": build_mlp_frontend,
    "conv_block": build_conv_frontend,
}

__all__ = ["FRONTEND_GENERATORS", "build_conv_frontend",
           "build_mlp_frontend"]
