"""Synthetic ML model graphs for the Table-1 compile-time study.

The paper converts real TensorFlow models to TOSA; without the
TensorFlow toolchain we synthesize TOSA graphs with the same op counts
and a realistic op mix (conv blocks for the CNN, attention/FFN blocks
for the transformers). Compile time of the TOSA->Linalg pipeline
depends on the number and kinds of ops flowing through it, which these
generators match exactly.
"""

from .frontend_models import (
    FRONTEND_GENERATORS,
    build_conv_frontend,
    build_mlp_frontend,
)
from .generators import (
    MODEL_SPECS,
    ModelSpec,
    build_mlp_model,
    build_model,
    count_ops,
)

__all__ = [
    "FRONTEND_GENERATORS",
    "MODEL_SPECS",
    "ModelSpec",
    "build_conv_frontend",
    "build_mlp_frontend",
    "build_mlp_model",
    "build_model",
    "count_ops",
]
