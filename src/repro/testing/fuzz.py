"""Seeded schedule/payload fuzzing for the transform interpreter.

MLIR-Smith-style hardening (arXiv:2601.02218): every case builds a
random payload module from the registered dialects and a
random-but-type-correct transform script, runs the script under the
interpreter's exception barrier, and asserts the robustness invariants:

* **containment** — interpretation either returns a
  :class:`~repro.core.errors.TransformResult` or raises a clean
  :class:`~repro.core.errors.TransformInterpreterError`; any other
  exception is a harness crash and fails the run;
* **consistency** — after a non-definite outcome the payload still
  verifies;
* **transactional rollback** — a schedule whose first alternative
  mutates the payload and then fails silenceably must leave the payload
  print byte-identical to its pre-``alternatives`` state;
* **stable classification** — regenerating and re-running a case from
  its seed reproduces the same outcome kind, message and payload print.

With ``--differential``, every case additionally cross-checks the
static analysis (:mod:`repro.analysis.invalidation`) against the
observed dynamic semantics:

* **static soundness** — a dynamic handle-invalidation error must be
  predicted by at least one static issue (any severity; the coarse
  may-alias warnings participate);
* **static precision** — a schedule that executes cleanly must carry
  zero *definite* (``error``-severity) static diagnostics.

Every case is derived from a single ``(seed, index)`` pair, so a CI
failure is reproducible locally with::

    python -m repro.testing.fuzz --seed N --cases M
    python -m repro.testing.fuzz --case-seed K   # one failing case
    python -m repro.testing.fuzz --seed N --differential
"""

from __future__ import annotations

import random
import traceback
from collections import Counter
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core import dialect as transform
from ..core.errors import TransformInterpreterError
from ..core.interpreter import TransformInterpreter
from ..dialects import arith, builtin, func, scf
from ..ir.builder import Builder
from ..ir.core import Operation, Value
from ..ir.printer import print_op

#: Payload op names the schedule fuzzer may try to match (a mix of
#: names the payload generator emits and names it never does, so both
#: populated and empty matches are exercised).
MATCHABLE_NAMES = (
    "scf.for",
    "arith.constant",
    "arith.addf",
    "arith.mulf",
    "arith.addi",
    "func.func",
    "memref.load",  # never generated: exercises empty matches
)


# ---------------------------------------------------------------------------
# Payload generation
# ---------------------------------------------------------------------------


class PayloadFuzzer:
    """Builds small random-but-verifying payload modules.

    The shapes mirror the paper's workloads: functions containing
    nests of ``scf.for`` loops with arithmetic bodies. Loop bounds are
    random constants so loop transforms (tile/split/unroll/peel) have
    real trip counts to work with.
    """

    def __init__(self, rng: random.Random):
        self.rng = rng

    def module(self) -> Operation:
        module = builtin.module()
        for index in range(self.rng.randint(1, 2)):
            function = func.func(f"fuzz_fn{index}", [])
            module.body.append(function)
            builder = Builder.at_end(function.body)
            for _ in range(self.rng.randint(1, 2)):
                self._item(builder, depth=0)
            func.return_(builder)
        module.verify()
        return module

    def _item(self, builder: Builder, depth: int) -> None:
        if depth < 3 and self.rng.random() < 0.75:
            self._loop(builder, depth)
        else:
            self._arith_chunk(builder)

    def _loop(self, builder: Builder, depth: int) -> None:
        lower = arith.index_constant(builder, 0)
        upper = arith.index_constant(builder, self.rng.choice((2, 3, 4, 6, 8)))
        step = arith.index_constant(builder, 1)
        loop = scf.for_(builder, lower, upper, step)
        body = Builder.at_end(loop.body)
        for _ in range(self.rng.randint(1, 2)):
            self._item(body, depth + 1)
        if self.rng.random() < 0.5:
            # Index arithmetic on the induction variable.
            offset = arith.index_constant(body, self.rng.randint(1, 4))
            arith.addi(body, loop.induction_var, offset)
        scf.yield_(body)

    def _arith_chunk(self, builder: Builder) -> None:
        values: List[Value] = [
            arith.constant(builder, float(self.rng.randint(0, 9)))
            for _ in range(self.rng.randint(2, 3))
        ]
        for _ in range(self.rng.randint(1, 3)):
            lhs, rhs = self.rng.choice(values), self.rng.choice(values)
            combine = self.rng.choice((arith.addf, arith.mulf))
            values.append(combine(builder, lhs, rhs))


# ---------------------------------------------------------------------------
# Schedule generation
# ---------------------------------------------------------------------------


class ScheduleFuzzer:
    """Builds random transform scripts over the live-handle state.

    Generated scripts are *type-correct* (loop transforms only ever see
    handles produced by matching ``scf.for``) but intentionally explore
    the whole failure space: empty matches, consumed-handle reuse,
    invalid ``position`` values and unconditional silenceable failures
    all appear with small probability. With ``safe=True`` the generator
    restricts itself to schedules that can only fail *silenceably* —
    the requirement for rollback cases, where a definite error would
    abort instead of restoring.
    """

    def __init__(self, rng: random.Random, safe: bool = False):
        self.rng = rng
        self.safe = safe

    def sequence(self) -> Operation:
        script, builder, root = transform.sequence()
        self.fill_block(builder, root, self.rng.randint(2, 6))
        transform.yield_(builder)
        return script

    def fill_block(self, builder: Builder, root: Value, n_steps: int,
                   nesting: int = 0) -> None:
        #: (handle, payload-op-name-or-None) for live (unconsumed)
        #: handles; None means the handle may hold anything.
        loops: List[Value] = []
        anything: List[Value] = [root]
        consumed: List[Value] = []

        for _ in range(n_steps):
            choice = self.rng.random()
            if choice < 0.35:
                scope = self.rng.choice(anything)
                name = self.rng.choice(MATCHABLE_NAMES)
                position = self.rng.choice(
                    ("all", "all", "first", "second", "last")
                )
                if not self.safe and self.rng.random() < 0.05:
                    position = "middle"  # invalid: definite error
                handle = transform.match_op(
                    builder, scope, name, position=position
                )
                (loops if name == "scf.for" else anything).append(handle)
            elif choice < 0.6 and loops:
                self._loop_transform(builder, loops, consumed)
            elif choice < 0.7:
                target = self.rng.choice(anything + loops)
                transform.annotate(
                    builder, target, "fuzz_mark", self.rng.randint(0, 99)
                )
            elif choice < 0.78 and len(anything) >= 2:
                merged = builder.create(
                    "transform.merge_handles",
                    operands=self.rng.sample(anything, 2),
                    result_types=[transform.ANY_OP],
                ).result
                anything.append(merged)
            elif choice < 0.86:
                target = self.rng.choice(anything + loops)
                builder.create(
                    "transform.num_payload_ops",
                    operands=[target],
                    result_types=[transform.PARAM_I64],
                )
            elif choice < 0.92 and nesting < 2:
                self._nested_alternatives(builder, root, nesting)
            elif not self.safe and choice < 0.96 and consumed:
                # Deliberate use-after-consume: must surface as a clean
                # definite error, never a crash.
                transform.annotate(
                    builder, self.rng.choice(consumed), "after_consume"
                )
            else:
                builder.create(
                    "transform.test.emit_silenceable",
                    attributes={"message": "fuzz-silenceable"},
                )
        if not self.safe and self.rng.random() < 0.25:
            # Close the block with a guaranteed consume-then-use chain
            # so use-after-consume (and the --differential soundness
            # oracle) is exercised far more often than the 4%-slot
            # above manages on its own.
            if not consumed:
                if not loops:
                    loops.append(transform.match_op(
                        builder, root, "scf.for", position="all"
                    ))
                self._loop_transform(builder, loops, consumed)
            transform.annotate(
                builder, self.rng.choice(consumed), "after_consume"
            )

    def _loop_transform(self, builder: Builder, loops: List[Value],
                        consumed: List[Value]) -> None:
        loop = self.rng.choice(loops)
        kind = self.rng.choice(("tile", "split", "unroll", "peel"))
        if kind == "tile":
            sizes = self.rng.choice(([2], [3], [0], [2, 2]))
            transform.loop_tile(builder, loop, sizes)
        elif kind == "split":
            transform.loop_split(builder, loop, self.rng.choice((2, 3)))
        elif kind == "unroll":
            if self.rng.random() < 0.5:
                transform.loop_unroll(builder, loop, full=True)
            else:
                transform.loop_unroll(
                    builder, loop, factor=self.rng.choice((1, 2, 4))
                )
        else:
            op = builder.create(
                "transform.loop.peel",
                operands=[loop],
                result_types=[transform.ANY_OP, transform.ANY_OP],
            )
            del op
        # All four consume their loop operand.
        loops.remove(loop)
        consumed.append(loop)

    def _nested_alternatives(self, builder: Builder, root: Value,
                             nesting: int) -> None:
        alts = transform.alternatives(builder, self.rng.randint(1, 3))
        for region in alts.regions[:-1]:
            inner = Builder.at_end(region.entry_block)
            self.fill_block(inner, root, self.rng.randint(1, 3),
                            nesting + 1)
            if self.rng.random() < 0.6:
                inner.create("transform.test.emit_silenceable")
            transform.yield_(inner)
        # Last region: either another attempt or the empty fallback.
        if self.rng.random() < 0.5:
            inner = Builder.at_end(alts.regions[-1].entry_block)
            self.fill_block(inner, root, self.rng.randint(1, 2),
                            nesting + 1)
            transform.yield_(inner)


def build_rollback_case(rng: random.Random
                        ) -> Tuple[Operation, Operation]:
    """Payload + schedule whose first alternative mutates then fails.

    Region 1 runs a *safe* random mutating schedule and then fails
    silenceably; region 2 is the empty "leave the code unchanged"
    fallback. Interpretation must succeed with the payload print
    byte-identical to the pre-``alternatives`` state.
    """
    payload = PayloadFuzzer(rng).module()
    script, builder, root = transform.sequence()
    alts = transform.alternatives(builder, 2)
    first = Builder.at_end(alts.regions[0].entry_block)
    ScheduleFuzzer(rng, safe=True).fill_block(
        first, root, rng.randint(1, 4), nesting=1
    )
    first.create(
        "transform.test.emit_silenceable",
        attributes={"message": "force rollback"},
    )
    transform.yield_(builder)
    return payload, script


# ---------------------------------------------------------------------------
# Case execution and invariants
# ---------------------------------------------------------------------------


@dataclass
class CaseOutcome:
    """Classified result of interpreting one fuzz case."""

    kind: str  # "success" | "silenceable" | "definite" | "crash"
    message: str
    payload_print: str


@dataclass
class FuzzFailure:
    """One violated invariant, with enough context to reproduce."""

    case_seed: int
    invariant: str
    detail: str

    def __str__(self) -> str:
        return (
            f"[case-seed {self.case_seed}] {self.invariant}: {self.detail}"
        )


@dataclass
class FuzzReport:
    """Aggregate over a fuzz run."""

    cases: int = 0
    outcomes: Counter = field(default_factory=Counter)
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = [f"fuzz: {self.cases} cases"]
        for kind in ("success", "silenceable", "definite", "crash",
                     "clean", "violated"):
            if self.outcomes.get(kind):
                lines.append(f"  {kind}: {self.outcomes[kind]}")
        if self.failures:
            lines.append(f"  FAILURES: {len(self.failures)}")
            lines.extend(f"    {failure}" for failure in self.failures)
        else:
            lines.append("  all invariants held")
        return "\n".join(lines)


def _interpret(payload: Operation, script: Operation) -> CaseOutcome:
    """Run ``script`` on ``payload``, classifying the outcome."""
    interpreter = TransformInterpreter()
    try:
        result = interpreter.apply(script, payload)
    except TransformInterpreterError as error:
        return CaseOutcome("definite", str(error.result.message),
                           print_op(payload))
    except Exception as error:  # pragma: no cover - a found bug
        return CaseOutcome(
            "crash",
            f"{type(error).__name__}: {error}\n"
            + traceback.format_exc(limit=8),
            "",
        )
    kind = "silenceable" if result.is_silenceable else "success"
    return CaseOutcome(kind, result.message, print_op(payload))


def _build_case(case_seed: int
                ) -> Tuple[Operation, Operation, bool, str]:
    """(payload, script, is_rollback_case, pre-run print)."""
    rng = random.Random(case_seed)
    rollback = rng.random() < 0.4
    if rollback:
        payload, script = build_rollback_case(rng)
    else:
        payload = PayloadFuzzer(rng).module()
        script = ScheduleFuzzer(rng).sequence()
    return payload, script, rollback, print_op(payload)


def _differential_check(case_seed: int, script: Operation,
                        outcome: CaseOutcome,
                        failures: List[FuzzFailure]) -> None:
    """Cross-check the static analysis against the dynamic outcome.

    Soundness: a dynamic invalidation error must have been predicted
    (any severity — the worst-case may-alias warnings count).
    Precision: a cleanly-executing schedule must carry no *definite*
    (error-severity) static diagnostic.
    """
    from ..analysis.invalidation import ERROR, analyze_script

    try:
        issues = analyze_script(script, may_alias=True)
    except Exception as error:  # pragma: no cover - a found bug
        failures.append(FuzzFailure(
            case_seed, "static-analysis-containment",
            f"{type(error).__name__}: {error}\n"
            + traceback.format_exc(limit=8),
        ))
        return
    if outcome.kind == "definite" and "invalidated by" in outcome.message:
        if not issues:
            failures.append(FuzzFailure(
                case_seed, "static-soundness",
                f"dynamic invalidation error not predicted "
                f"statically: {outcome.message}",
            ))
    if outcome.kind == "success":
        definite = [i for i in issues if i.severity == ERROR]
        if definite:
            failures.append(FuzzFailure(
                case_seed, "static-precision",
                f"schedule executed cleanly but carries "
                f"{len(definite)} definite static error(s), e.g. "
                f"{definite[0]}",
            ))


def run_case(case_seed: int, differential: bool = False
             ) -> Tuple[CaseOutcome, List[FuzzFailure]]:
    """Build and interpret one case twice, checking every invariant."""
    failures: List[FuzzFailure] = []
    payload, script, rollback, before = _build_case(case_seed)
    outcome = _interpret(payload, script)

    if differential and outcome.kind != "crash":
        _differential_check(case_seed, script, outcome, failures)

    if outcome.kind == "crash":
        failures.append(FuzzFailure(
            case_seed, "no-uncaught-exceptions", outcome.message
        ))
        return outcome, failures

    if outcome.kind in ("success", "silenceable"):
        try:
            payload.verify()
        except Exception as error:
            failures.append(FuzzFailure(
                case_seed, "payload-verifies-after-run",
                f"{type(error).__name__}: {error}",
            ))

    if rollback:
        if outcome.kind != "success":
            failures.append(FuzzFailure(
                case_seed, "rollback-case-succeeds",
                f"got {outcome.kind}: {outcome.message}",
            ))
        elif outcome.payload_print != before:
            failures.append(FuzzFailure(
                case_seed, "rollback-byte-identical",
                "payload print changed across a rolled-back alternative",
            ))

    # Stable classification: regenerate from the seed and re-run.
    payload2, script2, _rollback2, before2 = _build_case(case_seed)
    if before2 != before:
        failures.append(FuzzFailure(
            case_seed, "deterministic-generation",
            "payload generation is not a pure function of the seed",
        ))
    replay = _interpret(payload2, script2)
    if (replay.kind, replay.message) != (outcome.kind, outcome.message):
        failures.append(FuzzFailure(
            case_seed, "stable-classification",
            f"first run {outcome.kind}: {outcome.message!r}; "
            f"replay {replay.kind}: {replay.message!r}",
        ))
    elif replay.payload_print != outcome.payload_print:
        failures.append(FuzzFailure(
            case_seed, "deterministic-execution",
            "payload prints diverge between identical runs",
        ))
    return outcome, failures


def run_fuzz(seed: int = 0, cases: int = 200,
             differential: bool = False) -> FuzzReport:
    """Run ``cases`` fuzz cases derived from ``seed``."""
    report = FuzzReport(cases=cases)
    for index in range(cases):
        case_seed = seed * 1_000_003 + index
        outcome, failures = run_case(case_seed, differential)
        report.outcomes[outcome.kind] += 1
        report.failures.extend(failures)
    return report


# ---------------------------------------------------------------------------
# CLI: python -m repro.testing.fuzz
# ---------------------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-fuzz",
        description="randomized schedule/payload fuzzing of the "
        "transform interpreter",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed for the run (default 0)")
    parser.add_argument("--cases", type=int, default=200,
                        help="number of cases (default 200)")
    parser.add_argument("--case-seed", type=int, default=None,
                        help="re-run a single case by its case-seed "
                        "(as printed in a failure report)")
    parser.add_argument("--differential", action="store_true",
                        help="cross-check the static invalidation "
                        "analysis against the dynamic outcome of every "
                        "case (soundness + precision oracle)")
    parser.add_argument("--frontend", action="store_true",
                        help="fuzz the repro.frontend schedule builder "
                        "instead: random fluent chains must emit "
                        "lint-clean, round-trip-stable scripts and "
                        "reject stale handles at the Python level")
    args = parser.parse_args(argv)

    if args.frontend:
        if args.case_seed is not None:
            outcome, failures = run_frontend_case(args.case_seed)
            print(f"case-seed {args.case_seed}: {outcome.kind}")
            for failure in failures:
                print(f"  {failure}")
            return 0 if not failures else 1
        report = run_frontend_fuzz(args.seed, args.cases)
        print(report.render())
        return 0 if report.ok else 1

    if args.case_seed is not None:
        outcome, failures = run_case(args.case_seed, args.differential)
        print(f"case-seed {args.case_seed}: {outcome.kind}"
              + (f": {outcome.message}" if outcome.message else ""))
        for failure in failures:
            print(f"  {failure}")
        return 0 if not failures else 1

    report = run_fuzz(args.seed, args.cases, args.differential)
    print(report.render())
    return 0 if report.ok else 1




# ---------------------------------------------------------------------------
# Frontend builder fuzzing (--frontend)
# ---------------------------------------------------------------------------

_FRONTEND_MATCH_NAMES = ("scf.for", "linalg.matmul", "arith.addf",
                         "func.func", "memref.load")
_FRONTEND_PASSES = ("convert-scf-to-cf", "lower-affine",
                    "convert-arith-to-llvm")


class FrontendScheduleFuzzer:
    """Generate random transform scripts *through the builder API*.

    The invariant under test is the frontend's lint-clean-by-
    construction contract: whatever chain of fluent calls survives the
    builder's own checks must produce a script with zero
    error-severity ``repro-lint`` diagnostics and a digest-stable
    print→parse round-trip. Along the way each case probes the
    Python-level use-after-consume guard with deliberately stale
    handles and records a violation if the builder fails to raise.
    """

    def __init__(self, rng: random.Random):
        self.rng = rng
        self.violations: List[str] = []

    # -- helpers -----------------------------------------------------------

    def _match(self, scope) -> None:
        names = self.rng.choice(_FRONTEND_MATCH_NAMES)
        if self.rng.random() < 0.15:
            names = [names, self.rng.choice(_FRONTEND_MATCH_NAMES)]
        position = self.rng.choice(("all", "first", "second", "last"))
        scope.match(names, position=position)

    def _probe_stale(self, scope, stale) -> None:
        """A consumed handle must be rejected by the next use."""
        try:
            scope.use(stale)
        except Exception as error:
            from ..frontend.errors import ScheduleError
            if not isinstance(error, ScheduleError):
                self.violations.append(
                    f"stale-handle probe raised {type(error).__name__}, "
                    "expected ScheduleError"
                )
            return
        self.violations.append(
            "stale-handle probe: builder accepted a consumed handle"
        )

    def _consuming_action(self, scope) -> None:
        stale = scope._cursor
        kind = self.rng.choice(("tile", "split", "unroll", "peel",
                                "to_library"))
        if kind == "tile":
            if self.rng.random() < 0.3:
                sizes = scope.param(
                    [self.rng.choice((2, 4, 8, 16)),
                     self.rng.choice((2, 4, 8, 16))],
                    binding=f"T{self.rng.randrange(100)}")
                scope.tile(sizes=sizes,
                           keep=self.rng.choice(("outer", "inner")))
            else:
                scope.tile(sizes=[self.rng.choice((2, 4, 8, 16, 32))],
                           keep=self.rng.choice(("outer", "inner")))
        elif kind == "split":
            scope.split(self.rng.choice((2, 4, 8, 32)),
                        keep=self.rng.choice(("main", "rest")))
        elif kind == "unroll":
            if self.rng.random() < 0.5:
                scope.unroll(full=True)
            else:
                scope.unroll(self.rng.choice((2, 4, 8)))
        elif kind == "peel":
            scope.peel(keep=self.rng.choice(("main", "rest")))
        else:
            scope.to_library(self.rng.choice(("libxsmm", "blis")))
        if stale is not None and not stale.live \
                and self.rng.random() < 0.6:
            self._probe_stale(scope, stale)

    def _in_place_action(self, scope) -> None:
        kind = self.rng.choice(("vectorize", "hoist", "annotate",
                                "select", "pass", "print"))
        if kind == "vectorize":
            if self.rng.random() < 0.3:
                width = scope.param(
                    self.rng.choice((2, 4, 8)),
                    binding=f"V{self.rng.randrange(100)}")
                scope.vectorize(width)
            else:
                scope.vectorize(self.rng.choice((2, 4, 8, 16)))
        elif kind == "hoist":
            scope.hoist()
        elif kind == "annotate":
            scope.annotate("fuzz_tag", self.rng.randrange(16))
        elif kind == "select":
            scope.select(self.rng.choice(_FRONTEND_MATCH_NAMES))
        elif kind == "pass":
            scope.apply_registered_pass(
                self.rng.choice(_FRONTEND_PASSES))
        else:
            scope.print_("fuzz")

    def _fill_scope(self, scope, depth: int = 0) -> None:
        self._match(scope)
        for _ in range(self.rng.randrange(2, 6)):
            if scope._cursor is None or not scope._cursor.live:
                self._match(scope)
            roll = self.rng.random()
            if roll < 0.35:
                self._consuming_action(scope)
            elif roll < 0.85 or depth >= 1:
                self._in_place_action(scope)
            else:
                regions = [
                    (lambda nested: self._fill_scope(nested, depth + 1))
                    if self.rng.random() < 0.7 else None
                    for _ in range(self.rng.randrange(1, 3))
                ]
                if all(body is None for body in regions):
                    regions[0] = (
                        lambda nested: self._fill_scope(nested, depth + 1)
                    )
                scope.alternatives(*regions)

    def build(self):
        """One random schedule; returns the un-built Schedule."""
        from ..frontend import Schedule

        schedule = Schedule()
        if self.rng.random() < 0.3:
            name = f"helper_{self.rng.randrange(1000)}"

            def body(scope):
                self._fill_scope(scope, depth=1)

            schedule.define(name, body)
            self._match(schedule)
            schedule.include(name)
        self._fill_scope(schedule)
        return schedule


def run_frontend_case(case_seed: int
                      ) -> Tuple[CaseOutcome, List[FuzzFailure]]:
    """Build one random schedule through the builder and check the
    frontend invariants."""
    from ..analysis.lint import lint_script
    from ..ir.diagnostics import Severity
    from ..ir.hashing import op_digest
    from ..ir.parser import parse

    failures: List[FuzzFailure] = []
    rng = random.Random(case_seed)
    fuzzer = FrontendScheduleFuzzer(rng)
    try:
        schedule = fuzzer.build()
        script = schedule.build()
    except Exception as error:  # pragma: no cover - a found bug
        failures.append(FuzzFailure(
            case_seed, "frontend-containment",
            f"builder raised {type(error).__name__}: {error}\n"
            + traceback.format_exc(limit=8),
        ))
        return CaseOutcome("crash", str(error), ""), failures

    for violation in fuzzer.violations:
        failures.append(FuzzFailure(
            case_seed, "frontend-use-after-consume", violation))

    engine = lint_script(script)
    errors = [d for d in engine.diagnostics
              if d.severity is Severity.ERROR]
    if errors:
        failures.append(FuzzFailure(
            case_seed, "frontend-lint-clean",
            "builder-emitted script has error diagnostics: "
            + "; ".join(str(d) for d in errors)
            + "\n" + print_op(script),
        ))

    text = print_op(script)
    if op_digest(parse(text, "<frontend-fuzz>")) != op_digest(script):
        failures.append(FuzzFailure(
            case_seed, "frontend-roundtrip",
            "print->parse changed the structural digest\n" + text,
        ))

    kind = "clean" if not failures else "violated"
    return CaseOutcome(kind, "", text), failures


def run_frontend_fuzz(seed: int = 0, cases: int = 200) -> FuzzReport:
    """Fuzz the schedule builder API (the ``--frontend`` mode)."""
    report = FuzzReport(cases=cases)
    for index in range(cases):
        case_seed = seed * 1_000_003 + index
        outcome, failures = run_frontend_case(case_seed)
        report.outcomes[outcome.kind] += 1
        report.failures.extend(failures)
    return report


if __name__ == "__main__":
    import sys

    sys.exit(main())
