"""Testing utilities: randomized schedule/payload fuzzing.

:mod:`repro.testing.fuzz` hardens the transform interpreter the way
MLIR-Smith hardens MLIR: seeded random payload modules and
random-but-type-correct transform scripts are executed under the
interpreter's exception barrier, and structural invariants (no uncaught
exceptions, transactional rollback restores the payload byte-for-byte,
deterministic failure classification) are asserted for every case.

The submodule is loaded lazily (PEP 562) so ``python -m
repro.testing.fuzz`` does not import it twice.
"""

__all__ = [
    "FuzzFailure",
    "FuzzReport",
    "PayloadFuzzer",
    "ScheduleFuzzer",
    "run_case",
    "run_fuzz",
]


def __getattr__(name):
    if name in __all__:
        from . import fuzz

        return getattr(fuzz, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
