"""Testing utilities: randomized fuzzing and deterministic fault injection.

:mod:`repro.testing.fuzz` hardens the transform interpreter the way
MLIR-Smith hardens MLIR: seeded random payload modules and
random-but-type-correct transform scripts are executed under the
interpreter's exception barrier, and structural invariants (no uncaught
exceptions, transactional rollback restores the payload byte-for-byte,
deterministic failure classification) are asserted for every case.

:mod:`repro.testing.faults` does the same for the compile service's
*infrastructure*: a seeded :class:`FaultPlan` injects worker crashes,
hangs, pool breakage, disk-cache errors and queue stalls at explicit
sites, and the chaos driver asserts every job still reaches a terminal
status with fault-free-identical recovered outputs.

Submodules are loaded lazily (PEP 562) so ``python -m
repro.testing.fuzz`` / ``python -m repro.testing.faults`` do not import
them twice — and so importing :class:`FaultPlan` from service modules
stays dependency-free (``faults`` is stdlib-only at module level).
"""

_FUZZ = frozenset({
    "FuzzFailure",
    "FuzzReport",
    "PayloadFuzzer",
    "ScheduleFuzzer",
    "run_case",
    "run_fuzz",
})
_FAULTS = frozenset({
    "CHAOS_RATES",
    "ChaosFailure",
    "ChaosReport",
    "FaultPlan",
    "FaultSite",
    "run_chaos",
    "run_chaos_case",
})

__all__ = sorted(_FUZZ | _FAULTS)


def __getattr__(name):
    if name in _FUZZ:
        from . import fuzz

        return getattr(fuzz, name)
    if name in _FAULTS:
        from . import faults

        return getattr(faults, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
