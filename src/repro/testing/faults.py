"""Deterministic fault injection and the chaos-fuzz driver.

The resilience layer (:mod:`repro.service.resilience`) is only
trustworthy if its failure paths run on every CI pass, not just when a
worker happens to die. This module provides:

* :class:`FaultPlan` — a seeded fault schedule threaded through the
  engine, worker, cache and frontier via explicit injection points
  (worker crash, worker hang, pool break, disk-write error, disk-read
  corruption, queue stall). Decisions are a pure function of
  ``(seed, site, scope key, occurrence index)`` — SHA-256 based, never
  Python's salted ``hash()`` — so a schedule replays identically
  across runs and processes regardless of thread interleaving;
* the chaos-fuzz driver (``python -m repro.testing.faults``) — every
  case builds a batch of fuzzed-but-well-formed jobs, runs it twice
  (fault-free reference, then under a randomized fault schedule
  through the real frontier/engine/pool stack) and asserts the
  resilience invariants:

  1. **terminal status** — every submitted job comes back with a
     terminal :class:`~repro.service.engine.JobStatus`;
  2. **no deadlock** — the batch completes inside a watchdog deadline;
  3. **recovery byte-identity** — any job that ends OK under faults
     produces output byte-identical to the fault-free run;
  4. **accounting balance** — engine/profiler counters reconcile with
     the observed results (submitted == completed, status histograms
     match, every injected fault is counted).

A CI failure prints the case seed and writes the fired fault schedule
(``--schedule-out``) so the exact run is replayable locally with
``python -m repro.testing.faults --case-seed K``.
"""

from __future__ import annotations

import enum
import hashlib
import json
import random
import struct
import threading
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple


class FaultSite(str, enum.Enum):
    """The explicit injection points wired into the service stack."""

    #: The worker process calls ``os._exit`` mid-job (engine sees
    #: ``BrokenProcessPool`` — the crash/retry/quarantine path).
    WORKER_CRASH = "worker_crash"
    #: The worker sleeps past any deadline (engine times the job out,
    #: kills the worker and restarts the pool).
    WORKER_HANG = "worker_hang"
    #: Every process in the pool is terminated right after dispatch —
    #: an externally induced pool collapse (OOM killer, cgroup kill).
    POOL_BREAK = "pool_break"
    #: The disk-cache write raises ``OSError`` (ENOSPC) mid-put.
    DISK_WRITE_ERROR = "disk_write_error"
    #: The disk-cache read returns corrupted bytes.
    DISK_READ_CORRUPT = "disk_read_corrupt"
    #: The frontier dispatcher stalls briefly before running a job.
    QUEUE_STALL = "queue_stall"


def _decision(seed: int, site: str, key: str, occurrence: int) -> float:
    hasher = hashlib.sha256()
    for item in (seed, site, key, occurrence):
        data = str(item).encode()
        hasher.update(struct.pack(">Q", len(data)))
        hasher.update(data)
    return int.from_bytes(hasher.digest()[:8], "big") / 2**64


class FaultPlan:
    """A seeded, deterministic schedule of faults.

    ``rates`` maps a :class:`FaultSite` (or its string value) to the
    probability that any given decision at that site fires. Each
    decision is keyed on ``(site, scope key, occurrence index)`` — the
    occurrence index counts how many times that (site, key) pair has
    been consulted, so "crash the first execution of job X but not its
    retry" is expressible and replayable. ``max_fires`` optionally
    bounds total injections per site (a chaos budget).

    The plan records every fired fault; :meth:`schedule` dumps the log
    for replay artifacts.
    """

    def __init__(self, seed: int = 0,
                 rates: Optional[Mapping[object, float]] = None,
                 max_fires: Optional[int] = None,
                 stall_seconds: float = 0.02):
        self.seed = seed
        self.stall_seconds = stall_seconds
        self.max_fires = max_fires
        self._rates: Dict[str, float] = {}
        for site, rate in (rates or {}).items():
            name = site.value if isinstance(site, FaultSite) else str(site)
            if name not in FaultSite._value2member_map_:
                raise ValueError(f"unknown fault site {name!r}")
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"fault rate must be in [0, 1]: {rate}")
            self._rates[name] = rate
        self._occurrences: Dict[Tuple[str, str], int] = {}
        self._fired: Counter = Counter()
        self._log: List[Dict[str, object]] = []
        self._lock = threading.Lock()

    def fire(self, site: FaultSite, key: str = "") -> bool:
        """Consult the plan at ``site`` for scope ``key``; True means
        the caller must inject the fault now."""
        name = site.value
        rate = self._rates.get(name, 0.0)
        with self._lock:
            occurrence = self._occurrences.get((name, key), 0)
            self._occurrences[(name, key)] = occurrence + 1
            if rate <= 0.0:
                return False
            if (self.max_fires is not None
                    and sum(self._fired.values()) >= self.max_fires):
                return False
            hit = _decision(self.seed, name, key, occurrence) < rate
            if hit:
                self._fired[name] += 1
                self._log.append({
                    "site": name, "key": key, "occurrence": occurrence,
                })
            return hit

    def worker_fault(self, key: str, attempt: int) -> Optional[str]:
        """Worker-side fault for one pooled execution: ``"crash"``,
        ``"hang"`` or None. Keyed per attempt so a retry of a crashed
        execution draws a fresh decision."""
        scope = f"{key}#attempt{attempt}"
        if self.fire(FaultSite.WORKER_CRASH, scope):
            return "crash"
        if self.fire(FaultSite.WORKER_HANG, scope):
            return "hang"
        return None

    @property
    def injected(self) -> Dict[str, int]:
        """Total faults fired, by site value."""
        with self._lock:
            return dict(self._fired)

    def schedule(self) -> List[Dict[str, object]]:
        """The ordered log of fired faults (for replay artifacts)."""
        with self._lock:
            return list(self._log)


# ---------------------------------------------------------------------------
# Chaos-fuzz driver
# ---------------------------------------------------------------------------


#: Fault rates used by the chaos driver. Worker-level faults are kept
#: moderate so most cases exercise *recovery* (retry succeeds) rather
#: than exhausting every attempt; disk faults are aggressive because
#: cache degradation must never fail a job.
CHAOS_RATES: Dict[FaultSite, float] = {
    FaultSite.WORKER_CRASH: 0.12,
    FaultSite.WORKER_HANG: 0.08,
    FaultSite.POOL_BREAK: 0.05,
    FaultSite.DISK_WRITE_ERROR: 0.35,
    FaultSite.DISK_READ_CORRUPT: 0.35,
    FaultSite.QUEUE_STALL: 0.20,
}


@dataclass
class ChaosFailure:
    """One violated invariant, with enough context to reproduce."""

    case_seed: int
    invariant: str
    detail: str

    def __str__(self) -> str:
        return f"[case-seed {self.case_seed}] {self.invariant}: {self.detail}"


@dataclass
class ChaosReport:
    """Aggregate over a chaos run."""

    cases: int = 0
    jobs: int = 0
    recovered: int = 0
    statuses: Counter = field(default_factory=Counter)
    faults: Counter = field(default_factory=Counter)
    failures: List[ChaosFailure] = field(default_factory=list)
    #: Fired fault schedules of failing cases, for replay artifacts.
    failing_schedules: Dict[int, List[Dict[str, object]]] = field(
        default_factory=dict
    )

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = [f"chaos: {self.cases} cases, {self.jobs} jobs"]
        by_status = "  ".join(
            f"{status}: {count}"
            for status, count in sorted(self.statuses.items())
        )
        if by_status:
            lines.append(f"  by status: {by_status}")
        by_site = "  ".join(
            f"{site}: {count}"
            for site, count in sorted(self.faults.items())
        )
        if by_site:
            lines.append(f"  faults injected: {by_site}")
        lines.append(f"  recovered jobs byte-identical: {self.recovered}")
        if self.failures:
            lines.append(f"  FAILURES: {len(self.failures)}")
            lines.extend(f"    {failure}" for failure in self.failures)
        else:
            lines.append("  all invariants held")
        return "\n".join(lines)


def _chaos_jobs(rng: random.Random) -> List[Tuple[str, str]]:
    """A small batch of (payload text, script text) pairs.

    Schedules come from the *safe* fuzzer (silenceable-only failure
    space) so the fault-free reference is deterministic and the only
    non-OK statuses under faults are ones the fault plan caused.
    Duplicates are appended to exercise single-flight coalescing under
    injected failure.
    """
    from ..core import dialect as transform
    from ..ir.printer import print_op
    from .fuzz import PayloadFuzzer, ScheduleFuzzer

    pairs: List[Tuple[str, str]] = []
    for _ in range(rng.randint(3, 5)):
        payload = PayloadFuzzer(rng).module()
        script, builder, root = transform.sequence()
        ScheduleFuzzer(rng, safe=True).fill_block(
            builder, root, rng.randint(1, 4)
        )
        transform.yield_(builder)
        pairs.append((print_op(payload), print_op(script)))
    for _ in range(rng.randint(1, 2)):
        pairs.append(rng.choice(pairs))
    return pairs


def run_chaos_case(case_seed: int, workers: int = 1,
                   job_timeout: float = 0.25,
                   watchdog_seconds: float = 120.0,
                   tracer=None, events=None, server: bool = False,
                   ) -> Tuple[ChaosReport, FaultPlan]:
    """Run one chaos case; the report carries any violated invariants.

    ``tracer``/``events`` (from :mod:`repro.observability`) are
    attached to the chaos engine when given, so a failing schedule
    leaves a replayable span + event timeline next to the report —
    the fired faults join against the event log on job id.

    With ``server=True`` the batch travels the full daemon path — a
    :class:`~repro.service.server.CompileServer` on a temporary unix
    socket, submissions through the asyncio client — so fault seeds
    exercise the wire protocol and the server's scheduler under the
    same invariants as the direct-frontier path.
    """
    import asyncio
    import os
    import tempfile

    from ..profiling import Profiler
    from ..service.cache import CompilationCache
    from ..service.engine import CompileEngine, CompileJob, JobStatus
    from ..service.frontier import ServiceFrontier
    from ..service.resilience import (
        PoolHealthPolicy,
        QuarantinePolicy,
        RetryPolicy,
    )

    report = ChaosReport(cases=1)
    rng = random.Random(case_seed)
    pairs = _chaos_jobs(rng)
    report.jobs = len(pairs)

    def jobs() -> List[CompileJob]:
        return [
            CompileJob(payload_text=payload, script_text=script,
                       job_id=f"chaos-{case_seed}-{index}")
            for index, (payload, script) in enumerate(pairs)
        ]

    # Fault-free reference: in-process, no cache, no faults.
    reference: List = []
    with CompileEngine(workers=0, preflight=False) as engine:
        for job in jobs():
            reference.append(engine.run_job(job))

    plan = FaultPlan(seed=case_seed, rates=CHAOS_RATES)
    profiler = Profiler()
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        cache = CompilationCache(capacity=64, disk_path=tmp,
                                 max_disk_errors=4, faults=plan)
        engine = CompileEngine(
            workers=workers,
            cache=cache,
            preflight=False,
            job_timeout=job_timeout,
            function_tier=False,
            retry_policy=RetryPolicy(
                max_attempts=3,
                retry_statuses=frozenset({"crashed", "timeout"}),
                base_backoff=0.005,
                max_backoff=0.02,
            ),
            quarantine=QuarantinePolicy(threshold=5),
            pool_health=PoolHealthPolicy(max_restarts=12,
                                         window_seconds=60.0),
            faults=plan,
            profiler=profiler,
            tracer=tracer,
            events=events,
        )

        async def drive():
            if server:
                from ..service.client import AsyncServiceClient
                from ..service.server import CompileServer

                sock = os.path.join(tmp, "chaos.sock")
                daemon = CompileServer(engine, socket_path=sock,
                                       max_queue=4)
                async with daemon:
                    client = await AsyncServiceClient.connect(sock)
                    try:
                        return list(await asyncio.gather(
                            *(client.submit(job.payload_text,
                                            job.script_text,
                                            job_id=job.job_id)
                              for job in jobs())
                        ))
                    finally:
                        await client.close()
            frontier = ServiceFrontier(engine, max_queue=4)
            async with frontier:
                return await frontier.run(jobs())

        try:
            try:
                results = asyncio.run(
                    asyncio.wait_for(drive(), timeout=watchdog_seconds)
                )
            except asyncio.TimeoutError:
                report.failures.append(ChaosFailure(
                    case_seed, "no-deadlock",
                    f"batch did not complete within {watchdog_seconds}s "
                    f"under fault schedule {plan.injected}",
                ))
                return report, plan

            # 1. Every job reaches a terminal status, in order.
            if [r.job_id for r in results] != [j.job_id for j in jobs()]:
                report.failures.append(ChaosFailure(
                    case_seed, "terminal-status",
                    "result set does not match the submitted batch",
                ))
            for result in results:
                report.statuses[result.status.value] += 1
                if not isinstance(result.status, JobStatus):
                    report.failures.append(ChaosFailure(
                        case_seed, "terminal-status",
                        f"{result.job_id}: non-terminal {result.status!r}",
                    ))

            # 2. Recovered jobs are byte-identical to the fault-free run.
            for result, ref in zip(results, reference):
                if result.ok:
                    if (result.status is not ref.status
                            or result.output != ref.output):
                        report.failures.append(ChaosFailure(
                            case_seed, "recovery-byte-identity",
                            f"{result.job_id}: {result.status.value} "
                            f"output diverges from the fault-free "
                            f"{ref.status.value} run",
                        ))
                    else:
                        report.recovered += 1
                elif ref.ok and result.status.value not in (
                        "crashed", "timeout", "poisoned", "cancelled"):
                    report.failures.append(ChaosFailure(
                        case_seed, "terminal-status",
                        f"{result.job_id}: fault-free run was "
                        f"{ref.status.value} but chaos run reports "
                        f"{result.status.value} — faults must only "
                        f"produce pool-failure statuses",
                    ))

            # 3. Stats and profiler counters balance.
            stats = engine.stats
            if stats.submitted != stats.completed:
                report.failures.append(ChaosFailure(
                    case_seed, "stats-balance",
                    f"submitted={stats.submitted} != "
                    f"completed={stats.completed}",
                ))
            if stats.completed != len(results):
                report.failures.append(ChaosFailure(
                    case_seed, "stats-balance",
                    f"completed={stats.completed} != "
                    f"results={len(results)}",
                ))
            if profiler.service.jobs != len(results):
                report.failures.append(ChaosFailure(
                    case_seed, "stats-balance",
                    f"profiler jobs={profiler.service.jobs} != "
                    f"results={len(results)}",
                ))
            poisoned = sum(1 for r in results
                           if r.status is JobStatus.POISONED)
            if stats.quarantined != poisoned:
                report.failures.append(ChaosFailure(
                    case_seed, "stats-balance",
                    f"quarantined={stats.quarantined} != "
                    f"poisoned results={poisoned}",
                ))
            injected = plan.injected
            if (injected.get("disk_write_error", 0)
                    or injected.get("disk_read_corrupt", 0)):
                disk_trouble = (cache.stats.disk_errors
                                + cache.stats.disk_corrupt)
                if disk_trouble == 0 and not cache.degraded:
                    report.failures.append(ChaosFailure(
                        case_seed, "stats-balance",
                        "disk faults fired but neither disk_errors "
                        "nor disk_corrupt counted",
                    ))
            resilience = profiler.resilience
            if resilience.retries != stats.retries:
                report.failures.append(ChaosFailure(
                    case_seed, "stats-balance",
                    f"profiler retries={resilience.retries} != "
                    f"engine retries={stats.retries}",
                ))
        finally:
            engine.shutdown()
    report.faults.update(plan.injected)
    if report.failures:
        report.failing_schedules[case_seed] = plan.schedule()
    return report, plan


def run_chaos(seed: int = 0, cases: int = 50, workers: int = 1,
              job_timeout: float = 0.25,
              tracer=None, events=None,
              server: bool = False) -> ChaosReport:
    """Run ``cases`` chaos cases derived from ``seed``."""
    total = ChaosReport()
    for index in range(cases):
        case_seed = seed * 1_000_003 + index
        report, _plan = run_chaos_case(case_seed, workers=workers,
                                       job_timeout=job_timeout,
                                       tracer=tracer, events=events,
                                       server=server)
        total.cases += 1
        total.jobs += report.jobs
        total.recovered += report.recovered
        total.statuses.update(report.statuses)
        total.faults.update(report.faults)
        total.failures.extend(report.failures)
        total.failing_schedules.update(report.failing_schedules)
    return total


# ---------------------------------------------------------------------------
# CLI: python -m repro.testing.faults
# ---------------------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-chaos",
        description="deterministic fault-injection chaos fuzzing of "
        "the compile service",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed for the run (default 0)")
    parser.add_argument("--cases", type=int, default=50,
                        help="number of cases (default 50)")
    parser.add_argument("--workers", type=int, default=1,
                        help="pool workers per case (default 1)")
    parser.add_argument("--timeout", type=float, default=0.25,
                        help="per-job deadline inside each case")
    parser.add_argument("--case-seed", type=int, default=None,
                        help="re-run a single case by its case-seed "
                        "(as printed in a failure report)")
    parser.add_argument("--server", action="store_true",
                        help="route every case through a repro-serve "
                        "daemon on a temporary unix socket (wire "
                        "protocol + server scheduler under faults) "
                        "instead of the direct frontier path")
    parser.add_argument("--schedule-out", default=None, metavar="FILE",
                        help="on failure, write the fired fault "
                        "schedules of failing cases here (JSON) for "
                        "replay")
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="write a Chrome trace-event JSON spanning "
                        "every chaos case here (ui.perfetto.dev)")
    parser.add_argument("--events-out", default=None, metavar="FILE",
                        help="write the JSONL job-lifecycle event log "
                        "of the whole run here")
    args = parser.parse_args(argv)

    tracer = events = None
    if args.trace_out is not None or args.events_out is not None:
        from ..observability import EventLog, Tracer

        tracer = Tracer() if args.trace_out is not None else None
        events = (EventLog(args.events_out)
                  if args.events_out is not None else None)

    def _flush_observability() -> None:
        if tracer is not None:
            tracer.write_chrome(args.trace_out)
        if events is not None:
            events.close()

    if args.case_seed is not None:
        report, plan = run_chaos_case(args.case_seed,
                                      workers=args.workers,
                                      job_timeout=args.timeout,
                                      tracer=tracer, events=events,
                                      server=args.server)
        _flush_observability()
        print(report.render())
        print(f"fault schedule: {json.dumps(plan.schedule())}")
        return 0 if report.ok else 1

    report = run_chaos(args.seed, args.cases, workers=args.workers,
                       job_timeout=args.timeout,
                       tracer=tracer, events=events,
                       server=args.server)
    _flush_observability()
    print(report.render())
    if not report.ok and args.schedule_out is not None:
        with open(args.schedule_out, "w") as handle:
            json.dump({
                "seed": args.seed,
                "cases": args.cases,
                "workers": args.workers,
                "failing_cases": {
                    str(case): schedule
                    for case, schedule in report.failing_schedules.items()
                },
                "failures": [str(f) for f in report.failures],
            }, handle, indent=2)
        print(f"fault schedules written to {args.schedule_out}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
