"""Core IR infrastructure: an MLIR-like SSA IR with regions.

This package provides the substrate on which the Transform dialect
(``repro.core``) is built: types, attributes, operations/blocks/regions
with use-def chains, builders, a verifier, textual printing/parsing,
affine expressions and diagnostics.
"""

from .affine import (
    AffineConstant,
    AffineDim,
    AffineExpr,
    AffineMap,
    AffineSymbol,
    constant as affine_constant,
    dim as affine_dim,
    symbol as affine_symbol,
)
from .attributes import (
    ArrayAttr,
    Attribute,
    BoolAttr,
    DenseIntAttr,
    DictAttr,
    FloatAttr,
    IntegerAttr,
    StringAttr,
    SymbolRefAttr,
    TypeAttr,
    UnitAttr,
    attr,
    index_attr,
    int_attr,
    unwrap,
)
from .builder import Builder, InsertionPoint
from .context import Context, SymbolTable, lookup_symbol, nearest_symbol_table
from .core import (
    Block,
    BlockArgument,
    Commutative,
    IsolatedFromAbove,
    IsTerminator,
    NoTerminator,
    OpOperand,
    OpResult,
    Operation,
    Pure,
    Region,
    SingleBlock,
    SymbolTableTrait,
    SymbolTrait,
    Trait,
    register_op,
    registered_op_class,
)
from .diagnostics import (
    Diagnostic,
    DiagnosticEngine,
    DiagnosticError,
    Severity,
)
from .location import (
    FileLineColLoc,
    FusedLoc,
    Location,
    NameLoc,
    UNKNOWN_LOC,
    UnknownLoc,
)
from .hashing import attributes_digest, op_digest
from .parser import ParseError, parse, register_type_parser
from .printer import print_attribute, print_op
from .types import (
    DYNAMIC,
    F16,
    F32,
    F64,
    FloatType,
    FunctionType,
    I1,
    I16,
    I32,
    I64,
    I8,
    INDEX,
    IndexType,
    IntegerType,
    LLVMPointerType,
    LLVMStructType,
    MemRefLayout,
    MemRefType,
    NONE,
    NoneType,
    OpaqueType,
    ShapedType,
    TensorType,
    Type,
    VectorType,
    memref,
    tensor,
    vector,
)

__all__ = [name for name in dir() if not name.startswith("_")]
