"""Affine expressions and maps.

A small but faithful model of MLIR's affine machinery: expressions over
dimensions (``d0``, ``d1``, ...) and symbols (``s0``, ...) combined with
``+``, ``*``, ``floordiv``, ``ceildiv`` and ``mod``; and affine maps
``(dims)[symbols] -> (results)``. Used by the ``affine`` dialect
(``affine.apply``/``affine.min``) and by ``expand-strided-metadata``
when externalizing memref address computations (case study 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class AffineExpr:
    """Base class of affine expressions."""

    # -- operator sugar -----------------------------------------------------

    def __add__(self, other: "ExprLike") -> "AffineExpr":
        return _simplify_add(self, to_expr(other))

    def __radd__(self, other: "ExprLike") -> "AffineExpr":
        return to_expr(other) + self

    def __mul__(self, other: "ExprLike") -> "AffineExpr":
        return _simplify_mul(self, to_expr(other))

    def __rmul__(self, other: "ExprLike") -> "AffineExpr":
        return to_expr(other) * self

    def __sub__(self, other: "ExprLike") -> "AffineExpr":
        return self + to_expr(other) * -1

    def __neg__(self) -> "AffineExpr":
        return self * -1

    def floordiv(self, other: "ExprLike") -> "AffineExpr":
        rhs = to_expr(other)
        if isinstance(self, AffineConstant) and isinstance(rhs, AffineConstant):
            return AffineConstant(self.value // rhs.value)
        if isinstance(rhs, AffineConstant) and rhs.value == 1:
            return self
        return AffineBinary("floordiv", self, rhs)

    def ceildiv(self, other: "ExprLike") -> "AffineExpr":
        rhs = to_expr(other)
        if isinstance(self, AffineConstant) and isinstance(rhs, AffineConstant):
            return AffineConstant(-(-self.value // rhs.value))
        if isinstance(rhs, AffineConstant) and rhs.value == 1:
            return self
        return AffineBinary("ceildiv", self, rhs)

    def __mod__(self, other: "ExprLike") -> "AffineExpr":
        rhs = to_expr(other)
        if isinstance(self, AffineConstant) and isinstance(rhs, AffineConstant):
            return AffineConstant(self.value % rhs.value)
        return AffineBinary("mod", self, rhs)

    # -- evaluation and substitution ----------------------------------------

    def evaluate(self, dims: Sequence[int], symbols: Sequence[int] = ()) -> int:
        raise NotImplementedError

    def replace(self, dim_repl: Sequence["AffineExpr"],
                sym_repl: Sequence["AffineExpr"] = ()) -> "AffineExpr":
        raise NotImplementedError

    @property
    def is_constant(self) -> bool:
        return isinstance(self, AffineConstant)


ExprLike = object  # AffineExpr | int


def to_expr(value: ExprLike) -> AffineExpr:
    if isinstance(value, AffineExpr):
        return value
    if isinstance(value, int):
        return AffineConstant(value)
    raise TypeError(f"not an affine expression: {value!r}")


@dataclass(frozen=True)
class AffineDim(AffineExpr):
    position: int

    def evaluate(self, dims, symbols=()):
        return dims[self.position]

    def replace(self, dim_repl, sym_repl=()):
        return dim_repl[self.position]

    def __str__(self) -> str:
        return f"d{self.position}"


@dataclass(frozen=True)
class AffineSymbol(AffineExpr):
    position: int

    def evaluate(self, dims, symbols=()):
        return symbols[self.position]

    def replace(self, dim_repl, sym_repl=()):
        if self.position < len(sym_repl):
            return sym_repl[self.position]
        return self

    def __str__(self) -> str:
        return f"s{self.position}"


@dataclass(frozen=True)
class AffineConstant(AffineExpr):
    value: int

    def evaluate(self, dims, symbols=()):
        return self.value

    def replace(self, dim_repl, sym_repl=()):
        return self

    def __str__(self) -> str:
        return str(self.value)


_EVALUATORS = {
    "add": lambda a, b: a + b,
    "mul": lambda a, b: a * b,
    "floordiv": lambda a, b: a // b,
    "ceildiv": lambda a, b: -(-a // b),
    "mod": lambda a, b: a % b,
}

_PRINTERS = {
    "add": "+",
    "mul": "*",
    "floordiv": "floordiv",
    "ceildiv": "ceildiv",
    "mod": "mod",
}


@dataclass(frozen=True)
class AffineBinary(AffineExpr):
    kind: str  # one of add/mul/floordiv/ceildiv/mod
    lhs: AffineExpr
    rhs: AffineExpr

    def evaluate(self, dims, symbols=()):
        return _EVALUATORS[self.kind](
            self.lhs.evaluate(dims, symbols), self.rhs.evaluate(dims, symbols)
        )

    def replace(self, dim_repl, sym_repl=()):
        lhs = self.lhs.replace(dim_repl, sym_repl)
        rhs = self.rhs.replace(dim_repl, sym_repl)
        if self.kind == "add":
            return lhs + rhs
        if self.kind == "mul":
            return lhs * rhs
        if self.kind == "floordiv":
            return lhs.floordiv(rhs)
        if self.kind == "ceildiv":
            return lhs.ceildiv(rhs)
        return lhs % rhs

    def __str__(self) -> str:
        return f"({self.lhs} {_PRINTERS[self.kind]} {self.rhs})"


def _simplify_add(lhs: AffineExpr, rhs: AffineExpr) -> AffineExpr:
    if isinstance(lhs, AffineConstant) and isinstance(rhs, AffineConstant):
        return AffineConstant(lhs.value + rhs.value)
    if isinstance(lhs, AffineConstant) and lhs.value == 0:
        return rhs
    if isinstance(rhs, AffineConstant) and rhs.value == 0:
        return lhs
    return AffineBinary("add", lhs, rhs)


def _simplify_mul(lhs: AffineExpr, rhs: AffineExpr) -> AffineExpr:
    if isinstance(lhs, AffineConstant) and isinstance(rhs, AffineConstant):
        return AffineConstant(lhs.value * rhs.value)
    if isinstance(lhs, AffineConstant) and lhs.value == 1:
        return rhs
    if isinstance(rhs, AffineConstant) and rhs.value == 1:
        return lhs
    if isinstance(lhs, AffineConstant) and lhs.value == 0:
        return lhs
    if isinstance(rhs, AffineConstant) and rhs.value == 0:
        return rhs
    return AffineBinary("mul", lhs, rhs)


# Convenience factories --------------------------------------------------------


def dim(position: int) -> AffineDim:
    return AffineDim(position)


def symbol(position: int) -> AffineSymbol:
    return AffineSymbol(position)


def constant(value: int) -> AffineConstant:
    return AffineConstant(value)


@dataclass(frozen=True)
class AffineMap:
    """An affine map ``(d...)[s...] -> (results...)``."""

    num_dims: int
    num_symbols: int
    results: Tuple[AffineExpr, ...]

    @staticmethod
    def identity(rank: int) -> "AffineMap":
        return AffineMap(rank, 0, tuple(AffineDim(i) for i in range(rank)))

    @staticmethod
    def constant_map(value: int) -> "AffineMap":
        return AffineMap(0, 0, (AffineConstant(value),))

    @staticmethod
    def from_exprs(num_dims: int, num_symbols: int,
                   exprs: Sequence[ExprLike]) -> "AffineMap":
        return AffineMap(num_dims, num_symbols,
                         tuple(to_expr(e) for e in exprs))

    @property
    def num_results(self) -> int:
        return len(self.results)

    def evaluate(self, dims: Sequence[int],
                 symbols: Sequence[int] = ()) -> List[int]:
        if len(dims) != self.num_dims or len(symbols) != self.num_symbols:
            raise ValueError(
                f"map expects {self.num_dims} dims / {self.num_symbols} "
                f"symbols, got {len(dims)} / {len(symbols)}"
            )
        return [r.evaluate(dims, symbols) for r in self.results]

    def compose(self, other: "AffineMap") -> "AffineMap":
        """``self ∘ other``: feed other's results into self's dims."""
        if other.num_results != self.num_dims:
            raise ValueError("composition arity mismatch")
        results = tuple(
            r.replace(list(other.results)) for r in self.results
        )
        return AffineMap(other.num_dims, other.num_symbols, results)

    def is_permutation(self) -> bool:
        if self.num_symbols or self.num_results != self.num_dims:
            return False
        seen = set()
        for r in self.results:
            if not isinstance(r, AffineDim):
                return False
            seen.add(r.position)
        return seen == set(range(self.num_dims))

    def __str__(self) -> str:
        dims = ", ".join(f"d{i}" for i in range(self.num_dims))
        syms = ", ".join(f"s{i}" for i in range(self.num_symbols))
        results = ", ".join(str(r) for r in self.results)
        sym_part = f"[{syms}]" if self.num_symbols else ""
        return f"({dims}){sym_part} -> ({results})"
