"""Source locations attached to IR objects.

Mirrors MLIR's location hierarchy in a simplified form: every operation
carries a :class:`Location` used by diagnostics. Locations are immutable
and hashable so they can be freely shared between cloned operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


@dataclass(frozen=True)
class Location:
    """Base class for all locations."""

    def __str__(self) -> str:  # pragma: no cover - overridden
        return "loc(unknown)"


@dataclass(frozen=True)
class UnknownLoc(Location):
    """An unknown location; the default for programmatically built IR."""

    def __str__(self) -> str:
        return "loc(unknown)"


@dataclass(frozen=True)
class FileLineColLoc(Location):
    """A location inside a source file."""

    filename: str
    line: int
    col: int

    def __str__(self) -> str:
        return f'loc("{self.filename}":{self.line}:{self.col})'


@dataclass(frozen=True)
class NameLoc(Location):
    """A named location, optionally wrapping a child location."""

    name: str
    child: Optional[Location] = None

    def __str__(self) -> str:
        if self.child is not None:
            return f'loc("{self.name}"({self.child}))'
        return f'loc("{self.name}")'


@dataclass(frozen=True)
class CallSiteLoc(Location):
    """A location resulting from inlining: callee location at a caller."""

    callee: Location
    caller: Location

    def __str__(self) -> str:
        return f"loc(callsite({self.callee} at {self.caller}))"


@dataclass(frozen=True)
class FusedLoc(Location):
    """A location fusing several child locations (e.g. after CSE)."""

    locations: Tuple[Location, ...] = field(default_factory=tuple)

    def __str__(self) -> str:
        inner = ", ".join(str(loc) for loc in self.locations)
        return f"loc(fused[{inner}])"


#: Shared unknown-location singleton used as the default everywhere.
UNKNOWN_LOC = UnknownLoc()
