"""The type system.

Types are immutable, hashable value objects mirroring MLIR's builtin
type hierarchy: integers, floats, index, function types, and the shaped
types (tensor, memref, vector). Dialects may define further types by
subclassing :class:`Type` (the transform dialect does, see
``repro.core.types``).

Shapes use ``DYNAMIC`` (``-1``) for dynamically sized dimensions, as in
MLIR's ``?`` notation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

#: Marker for a dynamic dimension in a shaped type (printed as ``?``).
DYNAMIC = -1


@dataclass(frozen=True)
class Type:
    """Base class of all types."""

    def __str__(self) -> str:  # pragma: no cover - overridden
        return "<type>"


# ---------------------------------------------------------------------------
# Scalar types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IntegerType(Type):
    """An integer type of arbitrary bitwidth, e.g. ``i1``, ``i32``."""

    width: int
    signed: Optional[bool] = None  # None = signless, MLIR default

    def __str__(self) -> str:
        if self.signed is None:
            return f"i{self.width}"
        return f"{'si' if self.signed else 'ui'}{self.width}"


@dataclass(frozen=True)
class IndexType(Type):
    """The platform-sized ``index`` type used for loop bounds and memrefs."""

    def __str__(self) -> str:
        return "index"


@dataclass(frozen=True)
class FloatType(Type):
    """An IEEE floating point type, e.g. ``f16``, ``f32``, ``f64``."""

    width: int

    def __str__(self) -> str:
        return f"f{self.width}"


@dataclass(frozen=True)
class NoneType(Type):
    """The unit type ``none``."""

    def __str__(self) -> str:
        return "none"


# ---------------------------------------------------------------------------
# Aggregate types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FunctionType(Type):
    """A function type ``(inputs) -> (results)``."""

    inputs: Tuple[Type, ...]
    results: Tuple[Type, ...]

    def __str__(self) -> str:
        ins = ", ".join(str(t) for t in self.inputs)
        if len(self.results) == 1:
            return f"({ins}) -> {self.results[0]}"
        outs = ", ".join(str(t) for t in self.results)
        return f"({ins}) -> ({outs})"


def _shape_str(shape: Tuple[int, ...]) -> str:
    return "".join(("?" if d == DYNAMIC else str(d)) + "x" for d in shape)


@dataclass(frozen=True)
class ShapedType(Type):
    """Base for tensor/memref/vector types carrying a shape."""

    shape: Tuple[int, ...]
    element_type: Type

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def has_static_shape(self) -> bool:
        return all(d != DYNAMIC for d in self.shape)

    @property
    def num_elements(self) -> int:
        if not self.has_static_shape:
            raise ValueError("dynamic shape has no static element count")
        total = 1
        for dim in self.shape:
            total *= dim
        return total


@dataclass(frozen=True)
class TensorType(ShapedType):
    """A ranked tensor type, e.g. ``tensor<4x?xf32>``."""

    def __str__(self) -> str:
        return f"tensor<{_shape_str(self.shape)}{self.element_type}>"


@dataclass(frozen=True)
class MemRefLayout:
    """Strided layout of a memref: ``offset`` plus per-dim ``strides``.

    ``DYNAMIC`` entries denote runtime-determined offsets/strides. The
    identity layout is represented by ``None`` on the memref itself.
    """

    offset: int = 0
    strides: Tuple[int, ...] = field(default_factory=tuple)

    def __str__(self) -> str:
        strides = ", ".join("?" if s == DYNAMIC else str(s) for s in self.strides)
        offset = "?" if self.offset == DYNAMIC else str(self.offset)
        return f"strided<[{strides}], offset: {offset}>"


@dataclass(frozen=True)
class MemRefType(ShapedType):
    """A memory reference type, e.g. ``memref<4x4xf32>``.

    The optional layout records non-identity strided views produced by
    ``memref.subview``; ``expand-strided-metadata`` (case study 2) turns
    non-trivial layouts back into explicit address arithmetic.
    """

    layout: Optional[MemRefLayout] = None
    memory_space: int = 0

    def __str__(self) -> str:
        parts = [f"{_shape_str(self.shape)}{self.element_type}"]
        if self.layout is not None:
            parts.append(str(self.layout))
        if self.memory_space != 0:
            parts.append(str(self.memory_space))
        return f"memref<{', '.join(parts)}>"

    def identity_strides(self) -> Tuple[int, ...]:
        """Row-major strides implied by the shape (identity layout)."""
        strides = []
        running = 1
        for dim in reversed(self.shape):
            strides.append(running)
            running *= dim if dim != DYNAMIC else 1
        return tuple(reversed(strides))

    @property
    def has_identity_layout(self) -> bool:
        if self.layout is None:
            return True
        return (
            self.layout.offset == 0
            and self.layout.strides == self.identity_strides()
        )


@dataclass(frozen=True)
class VectorType(ShapedType):
    """A fixed-shape vector type, e.g. ``vector<8xf32>``."""

    def __str__(self) -> str:
        return f"vector<{_shape_str(self.shape)}{self.element_type}>"


@dataclass(frozen=True)
class LLVMPointerType(Type):
    """An opaque LLVM pointer type (``!llvm.ptr``)."""

    address_space: int = 0

    def __str__(self) -> str:
        if self.address_space:
            return f"!llvm.ptr<{self.address_space}>"
        return "!llvm.ptr"


@dataclass(frozen=True)
class LLVMStructType(Type):
    """An LLVM struct type, used for memref descriptors after lowering."""

    members: Tuple[Type, ...]

    def __str__(self) -> str:
        inner = ", ".join(str(m) for m in self.members)
        return f"!llvm.struct<({inner})>"


@dataclass(frozen=True)
class OpaqueType(Type):
    """A dialect-specific opaque type, printed ``!dialect.name``."""

    dialect: str
    name: str

    def __str__(self) -> str:
        return f"!{self.dialect}.{self.name}"


# Common singletons / factories -------------------------------------------------

I1 = IntegerType(1)
I8 = IntegerType(8)
I16 = IntegerType(16)
I32 = IntegerType(32)
I64 = IntegerType(64)
F16 = FloatType(16)
F32 = FloatType(32)
F64 = FloatType(64)
INDEX = IndexType()
NONE = NoneType()


def tensor(*shape: int, element_type: Type = F32) -> TensorType:
    """Convenience factory: ``tensor(4, 4)`` -> ``tensor<4x4xf32>``."""
    return TensorType(tuple(shape), element_type)


def memref(*shape: int, element_type: Type = F32,
           layout: Optional[MemRefLayout] = None) -> MemRefType:
    """Convenience factory: ``memref(4, 4)`` -> ``memref<4x4xf32>``."""
    return MemRefType(tuple(shape), element_type, layout)


def vector(*shape: int, element_type: Type = F32) -> VectorType:
    """Convenience factory: ``vector(8)`` -> ``vector<8xf32>``."""
    return VectorType(tuple(shape), element_type)
