"""Textual IR printer (MLIR generic form).

Prints operations in MLIR's *generic* syntax, which every op supports:

.. code-block::

    %0 = "arith.addi"(%arg0, %1) : (i32, i32) -> i32
    "scf.for"(%lb, %ub, %step) ({
    ^bb0(%iv: index):
      ...
    }) : (index, index, index) -> ()

The output round-trips through :mod:`repro.ir.parser`.
"""

from __future__ import annotations

from typing import Dict, List

from .attributes import (
    AffineMapAttr,
    ArrayAttr,
    Attribute,
    BoolAttr,
    DenseFloatAttr,
    DenseIntAttr,
    DictAttr,
    FloatAttr,
    IntegerAttr,
    StringAttr,
    SymbolRefAttr,
    TypeAttr,
    UnitAttr,
)
from .core import Block, Operation, Value


class _NameManager:
    """Assigns stable ``%N`` / ``%argN`` / ``^bbN`` names while printing.

    The tables key on the Value/Block objects themselves (identity
    hash, strong references), not ``id()``: keying on ``id()`` lets a
    value erased mid-print free its integer for a freshly allocated
    one, aliasing two distinct values onto one name — the same
    ``id()``-reuse class the greedy driver's reverse index hit.
    """

    def __init__(self) -> None:
        self.value_names: Dict[Value, str] = {}
        self.block_names: Dict[Block, str] = {}
        self.next_value = 0
        self.next_block = 0

    def name_value(self, value: Value) -> str:
        name = self.value_names.get(value)
        if name is None:
            name = f"%{self.next_value}"
            self.value_names[value] = name
            self.next_value += 1
        return name

    def name_block_arg(self, value: Value) -> str:
        return self.name_value(value)

    def name_block(self, block: Block) -> str:
        name = self.block_names.get(block)
        if name is None:
            name = f"^bb{self.next_block}"
            self.block_names[block] = name
            self.next_block += 1
        return name


def print_attribute(attribute: Attribute) -> str:
    """Render an attribute in parseable textual form."""
    if isinstance(attribute, UnitAttr):
        return "unit"
    if isinstance(attribute, BoolAttr):
        return "true" if attribute.value else "false"
    if isinstance(attribute, IntegerAttr):
        return f"{attribute.value} : {attribute.type}"
    if isinstance(attribute, FloatAttr):
        value = repr(float(attribute.value))
        return f"{value} : {attribute.type}"
    if isinstance(attribute, StringAttr):
        escaped = attribute.value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    if isinstance(attribute, TypeAttr):
        return str(attribute.value)
    if isinstance(attribute, SymbolRefAttr):
        return str(attribute)
    if isinstance(attribute, ArrayAttr):
        return "[" + ", ".join(print_attribute(v) for v in attribute.values) + "]"
    if isinstance(attribute, DictAttr):
        inner = ", ".join(
            f"{k} = {print_attribute(v)}" for k, v in attribute.entries
        )
        return "{" + inner + "}"
    if isinstance(attribute, (DenseIntAttr, DenseFloatAttr)):
        inner = ", ".join(str(v) for v in attribute.values)
        return f"dense<[{inner}]> : {attribute.type}"
    if isinstance(attribute, AffineMapAttr):
        return f"affine_map<{attribute.map}>"
    return str(attribute)


def _print_attr_dict(attributes: Dict[str, Attribute]) -> str:
    if not attributes:
        return ""
    inner = ", ".join(
        f"{key} = {print_attribute(value)}"
        for key, value in sorted(attributes.items())
    )
    return " {" + inner + "}"


class Printer:
    """Stateful printer holding the name manager and indentation."""

    def __init__(self) -> None:
        self.names = _NameManager()
        self.lines: List[str] = []
        self.indent = 0

    def _emit(self, text: str) -> None:
        self.lines.append("  " * self.indent + text)

    def print_op(self, op: Operation) -> None:
        parts: List[str] = []
        if op.results:
            names = ", ".join(self.names.name_value(r) for r in op.results)
            parts.append(f"{names} = ")
        parts.append(f'"{op.name}"')
        operand_names = ", ".join(
            self.names.name_value(v) for v in op.operands
        )
        parts.append(f"({operand_names})")
        if op.successors:
            succ = ", ".join(self.names.name_block(s) for s in op.successors)
            parts.append(f"[{succ}]")
        header = "".join(parts)
        if op.regions:
            self._emit(header + " ({")
            for i, region in enumerate(op.regions):
                if i > 0:
                    self._emit("}, {")
                self.indent += 1
                self.print_region_body(region)
                self.indent -= 1
            self._emit("})" + self._op_suffix(op))
        else:
            self._emit(header + self._op_suffix(op))

    def _op_suffix(self, op: Operation) -> str:
        attr_txt = _print_attr_dict(op.attributes)
        in_types = ", ".join(str(v.type) for v in op.operands)
        out_types = ", ".join(str(r.type) for r in op.results)
        if len(op.results) == 1:
            type_txt = f" : ({in_types}) -> {op.results[0].type}"
        else:
            type_txt = f" : ({in_types}) -> ({out_types})"
        return f"{attr_txt}{type_txt}"

    def print_region_body(self, region) -> None:
        for block_index, block in enumerate(region.blocks):
            # The entry block label may be omitted when it has no
            # arguments and there's a single block; keep it for arguments.
            if block.args or block_index > 0 or len(region.blocks) > 1:
                args = ", ".join(
                    f"{self.names.name_value(a)}: {a.type}" for a in block.args
                )
                label = self.names.name_block(block)
                self.indent -= 1
                self._emit(f"{label}({args}):")
                self.indent += 1
            for op in block.ops:
                self.print_op(op)

    def result(self) -> str:
        return "\n".join(self.lines)


def print_op(op: Operation) -> str:
    """Print a single operation (and nested regions) to a string."""
    printer = Printer()
    printer.print_op(op)
    return printer.result()


def value_name(op: Operation, value: Value) -> str:
    """The ``%N`` name ``value`` would get when printing ``op``."""
    printer = Printer()
    printer.print_op(op)
    return printer.names.value_names.get(value, "<unknown>")
