"""Textual IR parser for the MLIR generic form.

Parses the output of :mod:`repro.ir.printer` (and hand-written IR in the
same syntax) back into in-memory operations. Dialects with custom types
register a type parser via :func:`register_type_parser` keyed on the
dialect prefix of ``!dialect.kind`` tokens.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Optional, Tuple

from .attributes import (
    ArrayAttr,
    Attribute,
    BoolAttr,
    DenseFloatAttr,
    DenseIntAttr,
    DictAttr,
    FloatAttr,
    IntegerAttr,
    StringAttr,
    SymbolRefAttr,
    TypeAttr,
    UnitAttr,
)
from .core import Block, Operation, Value
from .location import FileLineColLoc
from .types import (
    DYNAMIC,
    FloatType,
    FunctionType,
    IndexType,
    IntegerType,
    LLVMPointerType,
    LLVMStructType,
    MemRefLayout,
    MemRefType,
    NoneType,
    OpaqueType,
    TensorType,
    Type,
    VectorType,
)

# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|//[^\n]*)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<arrow>->)
  | (?P<value>%[A-Za-z0-9_#$.\-]+)
  | (?P<block>\^[A-Za-z0-9_$.\-]+)
  | (?P<symbol>@[A-Za-z0-9_$.\-]+)
  | (?P<typetok>![A-Za-z_][A-Za-z0-9_.$\-]*)
  | (?P<number>-?\d+\.\d+(?:[eE][-+]?\d+)?|-?\d+(?:[eE][-+]?\d+)?|-?(?:inf|nan)\b)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.$\-]*)
  | (?P<punct>[()\[\]{}<>,:=*+]|\?)
    """,
    re.VERBOSE,
)


class Token:
    __slots__ = ("kind", "text", "pos", "line", "col")

    def __init__(self, kind: str, text: str, pos: int, line: int, col: int):
        self.kind = kind
        self.text = text
        self.pos = pos
        self.line = line
        self.col = col

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r})"


class ParseError(Exception):
    """Raised on malformed input."""

    def __init__(self, message: str, token: Optional[Token] = None):
        location = ""
        if token is not None:
            location = f" at line {token.line}:{token.col} near {token.text!r}"
        super().__init__(message + location)


def tokenize(text: str) -> List[Token]:
    tokens: List[Token] = []
    pos = 0
    line = 1
    line_start = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(
                f"unexpected character {text[pos]!r} at line {line}"
            )
        kind = match.lastgroup or ""
        value = match.group()
        if kind != "ws":
            tokens.append(
                Token(kind, value, pos, line, pos - line_start + 1)
            )
        newlines = value.count("\n")
        if newlines:
            line += newlines
            line_start = pos + value.rfind("\n") + 1
        pos = match.end()
    tokens.append(Token("eof", "", pos, line, 0))
    return tokens


# ---------------------------------------------------------------------------
# Extensible dialect type parsing
# ---------------------------------------------------------------------------

#: Maps a dialect prefix (e.g. ``transform``) to a callable that receives
#: the parser and the full ``!dialect.kind`` token text and returns a Type.
TYPE_PARSERS: Dict[str, Callable[["Parser", str], Type]] = {}


def register_type_parser(prefix: str,
                         fn: Callable[["Parser", str], Type]) -> None:
    TYPE_PARSERS[prefix] = fn


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

_INT_TYPE_RE = re.compile(r"^(si|ui|i)(\d+)$")
_FLOAT_TYPE_RE = re.compile(r"^f(\d+)$")


class Parser:
    def __init__(self, text: str, filename: str = "<string>"):
        self.tokens = tokenize(text)
        self.index = 0
        self.filename = filename
        self.value_scope: List[Dict[str, Value]] = [{}]
        self.block_scope: List[Dict[str, Block]] = [{}]

    # -- token plumbing ------------------------------------------------------

    @property
    def token(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def check(self, text: str) -> bool:
        return self.token.text == text

    def accept(self, text: str) -> bool:
        if self.token.text == text:
            self.advance()
            return True
        return False

    def expect(self, text: str) -> Token:
        if self.token.text != text:
            raise ParseError(f"expected {text!r}", self.token)
        return self.advance()

    def expect_kind(self, kind: str) -> Token:
        if self.token.kind != kind:
            raise ParseError(f"expected {kind}", self.token)
        return self.advance()

    def _location(self) -> FileLineColLoc:
        return FileLineColLoc(self.filename, self.token.line, self.token.col)

    # -- value and block scoping ----------------------------------------------

    def define_value(self, name: str, value: Value) -> None:
        self.value_scope[-1][name] = value

    def lookup_value(self, name: str) -> Value:
        for scope in reversed(self.value_scope):
            if name in scope:
                return scope[name]
        raise ParseError(f"use of undefined value {name}")

    def lookup_block(self, name: str) -> Block:
        scope = self.block_scope[-1]
        if name not in scope:
            scope[name] = Block()
        return scope[name]

    # -- types ----------------------------------------------------------------

    def parse_type(self) -> Type:
        token = self.token
        if token.kind == "typetok":
            return self.parse_dialect_type()
        if token.text == "(":
            return self.parse_function_type()
        if token.kind == "ident":
            return self.parse_builtin_type()
        raise ParseError("expected type", token)

    def parse_builtin_type(self) -> Type:
        token = self.advance()
        text = token.text
        int_match = _INT_TYPE_RE.match(text)
        if int_match:
            prefix, width = int_match.group(1), int(int_match.group(2))
            signed = {"i": None, "si": True, "ui": False}[prefix]
            return IntegerType(width, signed)
        float_match = _FLOAT_TYPE_RE.match(text)
        if float_match:
            return FloatType(int(float_match.group(1)))
        if text == "index":
            return IndexType()
        if text == "none":
            return NoneType()
        if text == "memref":
            return self.parse_memref_body()
        if text == "tensor":
            shape, element = self.parse_shape_body()
            return TensorType(shape, element)
        if text == "vector":
            shape, element = self.parse_shape_body()
            return VectorType(shape, element)
        raise ParseError(f"unknown type {text!r}", token)

    def parse_shape_body(self) -> Tuple[Tuple[int, ...], Type]:
        """Parse ``<4x?x8xf32>`` after the keyword."""
        self.expect("<")
        dims: List[int] = []
        while True:
            token = self.token
            if token.text == "?":
                self.advance()
                dims.append(DYNAMIC)
                self._expect_shape_separator()
            elif token.kind == "number" and "." not in token.text:
                self.advance()
                dims.append(int(token.text))
                self._expect_shape_separator()
            elif token.kind == "ident" and re.match(r"^\d", token.text):
                # forms like "4x4xf32" lex as one identifier; split it
                element = self._split_shape_ident(token.text, dims)
                if element is not None:
                    self.advance()
                    self.expect(">")
                    return tuple(dims), element
                self.advance()
            else:
                element = self.parse_type()
                self.expect(">")
                return tuple(dims), element

    def _expect_shape_separator(self) -> None:
        if self.token.kind == "ident" and self.token.text.startswith("x"):
            # "x4xf32" remainder lexed as identifier
            rest = self.token.text[1:]
            if rest:
                self.tokens[self.index] = Token(
                    "ident", rest, self.token.pos, self.token.line,
                    self.token.col,
                )
            else:
                self.advance()
        elif self.token.text == "*":
            raise ParseError("unranked shapes unsupported", self.token)

    def _split_shape_ident(self, text: str, dims: List[int]) -> Optional[Type]:
        """Split e.g. ``4x4xf32`` into dims [4, 4] and element type f32."""
        parts = text.split("x")
        for i, part in enumerate(parts):
            if part.isdigit():
                dims.append(int(part))
            elif part == "?":
                dims.append(DYNAMIC)
            else:
                remainder = "x".join(parts[i:])
                return _parse_scalar_type_text(remainder)
        return None

    def parse_memref_body(self) -> MemRefType:
        self.expect("<")
        dims: List[int] = []
        element: Optional[Type] = None
        while element is None:
            token = self.token
            if token.text == "?":
                self.advance()
                dims.append(DYNAMIC)
                self._expect_shape_separator()
            elif token.kind == "number" and "." not in token.text:
                self.advance()
                dims.append(int(token.text))
                self._expect_shape_separator()
            elif token.kind == "ident" and re.match(r"^[\d?]", token.text):
                element = self._split_shape_ident(token.text, dims)
                self.advance()
            else:
                element = self.parse_type()
        layout = None
        memory_space = 0
        if self.accept(","):
            if self.token.text == "strided":
                layout = self.parse_strided_layout()
                if self.accept(","):
                    memory_space = int(self.expect_kind("number").text)
            else:
                memory_space = int(self.expect_kind("number").text)
        self.expect(">")
        return MemRefType(tuple(dims), element, layout, memory_space)

    def parse_strided_layout(self) -> MemRefLayout:
        self.expect("strided")
        self.expect("<")
        self.expect("[")
        strides: List[int] = []
        while not self.accept("]"):
            if self.accept("?"):
                strides.append(DYNAMIC)
            else:
                strides.append(int(self.expect_kind("number").text))
            self.accept(",")
        offset = 0
        if self.accept(","):
            self.expect("offset")
            self.expect(":")
            if self.accept("?"):
                offset = DYNAMIC
            else:
                offset = int(self.expect_kind("number").text)
        self.expect(">")
        return MemRefLayout(offset, tuple(strides))

    def parse_function_type(self) -> FunctionType:
        self.expect("(")
        inputs: List[Type] = []
        while not self.accept(")"):
            inputs.append(self.parse_type())
            self.accept(",")
        self.expect("->")
        if self.accept("("):
            results: List[Type] = []
            while not self.accept(")"):
                results.append(self.parse_type())
                self.accept(",")
            return FunctionType(tuple(inputs), tuple(results))
        return FunctionType(tuple(inputs), (self.parse_type(),))

    def parse_dialect_type(self) -> Type:
        token = self.expect_kind("typetok")
        body = token.text[1:]  # strip '!'
        dialect = body.split(".", 1)[0]
        parser_fn = TYPE_PARSERS.get(dialect)
        if parser_fn is not None:
            return parser_fn(self, token.text)
        if body == "llvm.ptr":
            return LLVMPointerType()
        if body == "llvm.struct":
            self.expect("<")
            self.expect("(")
            members: List[Type] = []
            while not self.accept(")"):
                members.append(self.parse_type())
                self.accept(",")
            self.expect(">")
            return LLVMStructType(tuple(members))
        if "." in body:
            dialect_name, kind = body.split(".", 1)
            return OpaqueType(dialect_name, kind)
        raise ParseError(f"unknown dialect type {token.text!r}", token)

    # -- attributes -------------------------------------------------------------

    def parse_attribute(self) -> Attribute:
        token = self.token
        if token.kind == "string":
            self.advance()
            return StringAttr(_unescape(token.text[1:-1]))
        if token.kind == "number":
            self.advance()
            if _is_float_literal(token.text):
                value: Attribute = FloatAttr(float(token.text))
                if self.accept(":"):
                    value = FloatAttr(float(token.text), self.parse_type())
                return value
            if self.accept(":"):
                return IntegerAttr(int(token.text), self.parse_type())
            return IntegerAttr(int(token.text))
        if token.kind == "symbol":
            self.advance()
            nested: List[str] = []
            while self.check(":") and self.tokens[self.index + 1].text == ":":
                self.advance()
                self.advance()
                nested.append(self.expect_kind("symbol").text[1:])
            return SymbolRefAttr(token.text[1:], tuple(nested))
        if token.text == "unit":
            self.advance()
            return UnitAttr()
        if token.text == "true":
            self.advance()
            return BoolAttr(True)
        if token.text == "false":
            self.advance()
            return BoolAttr(False)
        if token.text == "[":
            self.advance()
            values: List[Attribute] = []
            while not self.accept("]"):
                values.append(self.parse_attribute())
                self.accept(",")
            return ArrayAttr(tuple(values))
        if token.text == "{":
            return DictAttr(tuple(self.parse_attr_dict().items()))
        if token.text == "dense":
            self.advance()
            self.expect("<")
            self.expect("[")
            literals: List[str] = []
            while not self.accept("]"):
                literals.append(self.expect_kind("number").text)
                self.accept(",")
            self.expect(">")
            self.expect(":")
            dense_type = self.parse_type()
            element = getattr(dense_type, "element_type", None)
            if isinstance(element, FloatType) or any(
                _is_float_literal(lit) for lit in literals
            ):
                return DenseFloatAttr(
                    tuple(float(lit) for lit in literals), dense_type
                )
            return DenseIntAttr(
                tuple(int(lit) for lit in literals), dense_type
            )
        # Fall back to a type attribute.
        return TypeAttr(self.parse_type())

    def parse_attr_dict(self) -> Dict[str, Attribute]:
        self.expect("{")
        out: Dict[str, Attribute] = {}
        while not self.accept("}"):
            name_token = self.token
            if name_token.kind not in ("ident", "string"):
                raise ParseError("expected attribute name", name_token)
            self.advance()
            name = (
                _unescape(name_token.text[1:-1])
                if name_token.kind == "string"
                else name_token.text
            )
            if self.accept("="):
                out[name] = self.parse_attribute()
            else:
                out[name] = UnitAttr()
            self.accept(",")
        return out

    # -- operations ---------------------------------------------------------------

    def parse_module(self) -> Operation:
        """Parse a single top-level operation (usually builtin.module)."""
        op = self.parse_operation()
        if self.token.kind != "eof":
            raise ParseError("trailing input after top-level op", self.token)
        return op

    def parse_operation(self) -> Operation:
        location = self._location()
        result_names: List[str] = []
        if self.token.kind == "value":
            result_names.append(self.advance().text)
            while self.accept(","):
                result_names.append(self.expect_kind("value").text)
            self.expect("=")
        name_token = self.expect_kind("string")
        op_name = _unescape(name_token.text[1:-1])

        self.expect("(")
        operand_names: List[str] = []
        while not self.accept(")"):
            operand_names.append(self.expect_kind("value").text)
            self.accept(",")

        successors: List[Block] = []
        if self.accept("["):
            while not self.accept("]"):
                successors.append(self.lookup_block(self.advance().text))
                self.accept(",")

        regions_blocks: List[List[Block]] = []
        if self.check("(") and self.tokens[self.index + 1].text == "{":
            self.advance()  # '('
            while True:
                regions_blocks.append(self.parse_region_blocks())
                if not self.accept(","):
                    break
            self.expect(")")

        attributes: Dict[str, Attribute] = {}
        if self.check("{"):
            attributes = self.parse_attr_dict()

        self.expect(":")
        func_type = self.parse_function_type()
        if len(func_type.inputs) != len(operand_names):
            raise ParseError(
                f"{op_name}: operand count does not match type", name_token
            )
        if len(func_type.results) != len(result_names):
            raise ParseError(
                f"{op_name}: result count does not match type", name_token
            )

        operands = [self.lookup_value(n) for n in operand_names]
        op = Operation.create(
            op_name,
            operands=operands,
            result_types=list(func_type.results),
            attributes=attributes,
            regions=len(regions_blocks),
            successors=successors,
            location=location,
        )
        for region, blocks in zip(op.regions, regions_blocks):
            for block in blocks:
                region.add_block(block)
        for name, result in zip(result_names, op.results):
            self.define_value(name, result)
        return op

    def parse_region_blocks(self) -> List[Block]:
        """Parse ``{ ... }``: an entry block plus labelled blocks."""
        self.expect("{")
        self.value_scope.append({})
        self.block_scope.append({})
        blocks: List[Block] = []

        def current_block() -> Block:
            if not blocks:
                blocks.append(Block())
            return blocks[-1]

        while not self.check("}"):
            if self.token.kind == "block":
                label = self.advance().text
                block = self.lookup_block(label)
                if self.accept("("):
                    while not self.accept(")"):
                        arg_name = self.expect_kind("value").text
                        self.expect(":")
                        arg_type = self.parse_type()
                        arg = block.add_arg(arg_type)
                        self.define_value(arg_name, arg)
                        self.accept(",")
                self.expect(":")
                blocks.append(block)
            else:
                current_block().append(self.parse_operation())
        self.expect("}")
        if not blocks:
            blocks.append(Block())
        self.value_scope.pop()
        self.block_scope.pop()
        return blocks


def _is_float_literal(text: str) -> bool:
    """True for number tokens that denote floats (``1.5``, ``1e-30``,
    ``inf``/``-inf``/``nan``), false for plain integers."""
    return (
        "." in text
        or "e" in text
        or "E" in text
        or "inf" in text
        or "nan" in text
    )


def _unescape(text: str) -> str:
    return text.replace('\\"', '"').replace("\\\\", "\\")


def _parse_scalar_type_text(text: str) -> Type:
    int_match = _INT_TYPE_RE.match(text)
    if int_match:
        prefix, width = int_match.group(1), int(int_match.group(2))
        signed = {"i": None, "si": True, "ui": False}[prefix]
        return IntegerType(width, signed)
    float_match = _FLOAT_TYPE_RE.match(text)
    if float_match:
        return FloatType(int(float_match.group(1)))
    if text == "index":
        return IndexType()
    raise ParseError(f"unknown element type {text!r}")


def parse(text: str, filename: str = "<string>") -> Operation:
    """Parse textual IR; returns the single top-level operation."""
    return Parser(text, filename).parse_module()
