"""Content-addressed structural hashing for IR subtrees.

Every scale-sensitive service path — cache lookup, single-flight
dedup, ``--jobs`` shard identity, byte-identity reassembly — used to
bottom out in :func:`repro.ir.printer.print_op` over an entire module:
O(module) string work per lookup. This module gives operations a
cheap structural identity instead: a SHA-256 digest computed
bottom-up over (op name, attributes, operand structure, result types,
successors, regions), memoized on the :class:`~repro.ir.core.
Operation` and invalidated through the mutation hooks in
:mod:`repro.ir.core` (an ancestor-chain walk that stops at the first
already-cleared memo, so never-hashed IR pays a single attribute
check per mutation).

The contract — property-tested over the fuzz corpus — is::

    op_digest(a) == op_digest(b)   =>   print_op(a) == print_op(b)

and any structural mutation of an op changes the digests of exactly
that op's ancestor chain.

Reference encoding
------------------

Printed SSA names are assigned in traversal order, so a digest that
guarantees print equality must capture *which* definition each use
refers to, positionally. Values defined inside the subtree being
hashed are encoded by their structural path (region index, block
index, defining-op index, result index — or block-argument index);
values defined outside it ("free" values, e.g. an operand of the
root) are encoded by first-occurrence index and reported upward in
the memo, where the parent re-encodes them against its own paths.
This keeps the memo compositional: a ``func.func`` keeps its digest
when it moves between modules, and a module digest is assembled from
its functions' memos without re-walking them. Successor blocks are
encoded through the same mechanism.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Dict, List, Tuple

from .core import Block, DIGEST_STATS, Operation, Value
from .printer import print_attribute

_PACK = struct.Struct(">I").pack

#: Domain-separation prefix; bump when the encoding changes so stale
#: digests can never collide with fresh ones across versions.
_DOMAIN = b"repro-op-digest-v1"


def _text(hasher, text: str) -> None:
    data = text.encode()
    hasher.update(_PACK(len(data)))
    hasher.update(data)


def _compute(op: Operation) -> Tuple[bytes, tuple, tuple]:
    """Digest of ``op``'s subtree plus its free values/blocks; memoized."""
    memo = op._digest
    if memo is not None:
        DIGEST_STATS.hits += 1
        return memo, op._digest_free, op._digest_free_blocks
    DIGEST_STATS.recomputes += 1

    local_values: Dict[int, bytes] = {}
    free_values: List[Value] = []
    free_value_index: Dict[int, int] = {}
    local_blocks: Dict[int, bytes] = {}
    free_blocks: List[Block] = []
    free_block_index: Dict[int, int] = {}

    def encode_value(value: Value) -> bytes:
        path = local_values.get(id(value))
        if path is not None:
            return b"L" + path
        index = free_value_index.get(id(value))
        if index is None:
            index = len(free_values)
            free_value_index[id(value)] = index
            free_values.append(value)
        return b"F" + _PACK(index)

    def encode_block(block: Block) -> bytes:
        path = local_blocks.get(id(block))
        if path is not None:
            return b"L" + path
        index = free_block_index.get(id(block))
        if index is None:
            index = len(free_blocks)
            free_block_index[id(block)] = index
            free_blocks.append(block)
        return b"F" + _PACK(index)

    hasher = hashlib.sha256(_DOMAIN)
    _text(hasher, op.name)
    hasher.update(_PACK(len(op.results)))
    for result in op.results:
        _text(hasher, str(result.type))
    # The root's operands are free by construction (SSA: an op cannot
    # use its own results, and its regions' values are not visible as
    # operands), and they are hashed before the regions so free
    # indices follow the printer's first-use order.
    hasher.update(_PACK(op.num_operands))
    for operand in op.operands:
        hasher.update(encode_value(operand))
        _text(hasher, str(operand.type))
    hasher.update(_PACK(len(op.successors)))
    for successor in op.successors:
        hasher.update(encode_block(successor))
    items = sorted(op.attributes.items())
    hasher.update(_PACK(len(items)))
    for key, attribute in items:
        _text(hasher, key)
        _text(hasher, print_attribute(attribute))
    hasher.update(_PACK(len(op.regions)))
    for region_index, region in enumerate(op.regions):
        hasher.update(_PACK(len(region.blocks)))
        # Pre-register every block and block argument of the region so
        # forward references (a branch to a later block) encode as
        # local paths, not free indices.
        for block_index, block in enumerate(region.blocks):
            prefix = _PACK(region_index) + _PACK(block_index)
            local_blocks[id(block)] = prefix
            for arg_index, arg in enumerate(block.args):
                local_values[id(arg)] = prefix + b"a" + _PACK(arg_index)
        for block_index, block in enumerate(region.blocks):
            prefix = _PACK(region_index) + _PACK(block_index)
            hasher.update(_PACK(len(block.args)))
            for arg in block.args:
                _text(hasher, str(arg.type))
            hasher.update(_PACK(len(block.ops)))
            for op_index, child in enumerate(block.ops):
                child_digest, child_free, child_free_blocks = _compute(child)
                hasher.update(child_digest)
                # Re-encode the child's free references against this
                # level's paths: this is what binds "child uses free
                # value #k" to an actual definition site.
                hasher.update(_PACK(len(child_free)))
                for value in child_free:
                    hasher.update(encode_value(value))
                hasher.update(_PACK(len(child_free_blocks)))
                for free_block in child_free_blocks:
                    hasher.update(encode_block(free_block))
                for result_index, result in enumerate(child.results):
                    local_values[id(result)] = (
                        prefix + b"r" + _PACK(op_index) + _PACK(result_index)
                    )
    digest = hasher.digest()
    op._digest = digest
    op._digest_free = tuple(free_values)
    op._digest_free_blocks = tuple(free_blocks)
    return digest, op._digest_free, op._digest_free_blocks


def op_digest(op: Operation) -> str:
    """Hex structural digest of ``op``'s subtree (memoized on the op).

    Equal digests imply byte-identical :func:`~repro.ir.printer.
    print_op` output; recomputation after a mutation touches only the
    invalidated ancestor chain, reusing every untouched subtree memo.
    """
    return _compute(op)[0].hex()


def attributes_digest(op: Operation) -> str:
    """Hex digest of ``op``'s attribute dictionary alone.

    Used by sharding reassembly as the module-attribute divergence
    backstop — a digest compare instead of materializing and
    comparing attribute dictionaries.
    """
    hasher = hashlib.sha256(b"repro-attrs-digest-v1")
    items = sorted(op.attributes.items())
    hasher.update(_PACK(len(items)))
    for key, attribute in items:
        _text(hasher, key)
        _text(hasher, print_attribute(attribute))
    return hasher.hexdigest()
