"""Diagnostics: errors, warnings, remarks emitted during compilation.

The engine collects diagnostics instead of raising immediately so that
passes, verifiers and the transform interpreter can report several
problems at once. Raising behaviour is configurable per engine.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List

from .location import Location, UNKNOWN_LOC


class Severity(enum.Enum):
    """Severity of a diagnostic."""

    ERROR = "error"
    WARNING = "warning"
    REMARK = "remark"
    NOTE = "note"


@dataclass
class Diagnostic:
    """A single diagnostic message with a location and optional notes."""

    severity: Severity
    message: str
    location: Location = UNKNOWN_LOC
    notes: List["Diagnostic"] = field(default_factory=list)

    def attach_note(self, message: str, location: Location = UNKNOWN_LOC) -> "Diagnostic":
        """Attach an explanatory note to this diagnostic and return it."""
        self.notes.append(Diagnostic(Severity.NOTE, message, location))
        return self

    def __str__(self) -> str:
        lines = [f"{self.location}: {self.severity.value}: {self.message}"]
        for note in self.notes:
            lines.append(f"  {note.location}: note: {note.message}")
        return "\n".join(lines)


class DiagnosticError(Exception):
    """Raised when an error diagnostic is emitted on a strict engine."""

    def __init__(self, diagnostic: Diagnostic):
        super().__init__(str(diagnostic))
        self.diagnostic = diagnostic


class DiagnosticEngine:
    """Collects diagnostics emitted during a compilation activity."""

    def __init__(self, raise_on_error: bool = False):
        self.diagnostics: List[Diagnostic] = []
        self.raise_on_error = raise_on_error

    def emit(self, diagnostic: Diagnostic) -> Diagnostic:
        """Record ``diagnostic``; raise if it is an error on a strict engine."""
        self.diagnostics.append(diagnostic)
        if self.raise_on_error and diagnostic.severity is Severity.ERROR:
            raise DiagnosticError(diagnostic)
        return diagnostic

    def error(self, message: str, location: Location = UNKNOWN_LOC) -> Diagnostic:
        return self.emit(Diagnostic(Severity.ERROR, message, location))

    def warning(self, message: str, location: Location = UNKNOWN_LOC) -> Diagnostic:
        return self.emit(Diagnostic(Severity.WARNING, message, location))

    def remark(self, message: str, location: Location = UNKNOWN_LOC) -> Diagnostic:
        return self.emit(Diagnostic(Severity.REMARK, message, location))

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    def has_errors(self) -> bool:
        return bool(self.errors)

    def clear(self) -> None:
        self.diagnostics.clear()

    def render(self) -> str:
        """Render all collected diagnostics as a single string."""
        return "\n".join(str(d) for d in self.diagnostics)
