"""IR construction helpers: insertion points and the builder."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from .attributes import AttrLike
from .core import Block, Operation, Value
from .location import Location, UNKNOWN_LOC
from .types import Type


class InsertionPoint:
    """A position in a block where new operations are inserted.

    Anchored positions ("before op X") resolve the list index lazily at
    insertion time: creating an insertion point is O(1), so pattern
    drivers can reposition builders speculatively without quadratic
    cost on large blocks.
    """

    def __init__(self, block: Block, index: Optional[int] = None,
                 anchor: Optional[Operation] = None, after: bool = False):
        self.block = block
        #: Explicit index; None with no anchor means "at end of block".
        self.index = index
        #: Anchor op: insert relative to it, resolved lazily.
        self.anchor = anchor
        self.after_anchor = after

    @staticmethod
    def at_end(block: Block) -> "InsertionPoint":
        return InsertionPoint(block, None)

    @staticmethod
    def at_start(block: Block) -> "InsertionPoint":
        return InsertionPoint(block, 0)

    @staticmethod
    def before(op: Operation) -> "InsertionPoint":
        assert op.parent is not None
        return InsertionPoint(op.parent, anchor=op)

    @staticmethod
    def after(op: Operation) -> "InsertionPoint":
        assert op.parent is not None
        return InsertionPoint(op.parent, anchor=op, after=True)

    def insert(self, op: Operation) -> Operation:
        if self.anchor is not None:
            if self.anchor.parent is not self.block:
                # Anchor was moved/erased meanwhile: append at end.
                self.block.append(op)
                return op
            if self.after_anchor:
                self.block.insert_after(self.anchor, op)
                self.anchor = op  # keep subsequent inserts in order
            else:
                self.block.insert_before(self.anchor, op)
            return op
        if self.index is None:
            self.block.append(op)
        else:
            self.block.insert(self.index, op)
            self.index += 1
        return op


class Builder:
    """Creates operations at a movable insertion point.

    Dialect modules provide thin functions wrapping ``builder.create`` so
    client code reads like ``arith.addi(builder, lhs, rhs)``.
    """

    def __init__(self, insertion_point: Optional[InsertionPoint] = None):
        self.ip = insertion_point

    # -- insertion point management ----------------------------------------

    @staticmethod
    def at_end(block: Block) -> "Builder":
        return Builder(InsertionPoint.at_end(block))

    @staticmethod
    def at_start(block: Block) -> "Builder":
        return Builder(InsertionPoint.at_start(block))

    @staticmethod
    def before(op: Operation) -> "Builder":
        return Builder(InsertionPoint.before(op))

    @staticmethod
    def after(op: Operation) -> "Builder":
        return Builder(InsertionPoint.after(op))

    def set_insertion_point_to_end(self, block: Block) -> None:
        self.ip = InsertionPoint.at_end(block)

    def set_insertion_point_to_start(self, block: Block) -> None:
        self.ip = InsertionPoint.at_start(block)

    def set_insertion_point_before(self, op: Operation) -> None:
        self.ip = InsertionPoint.before(op)

    def set_insertion_point_after(self, op: Operation) -> None:
        self.ip = InsertionPoint.after(op)

    # -- creation ------------------------------------------------------------

    def create(
        self,
        name: str,
        operands: Sequence[Value] = (),
        result_types: Sequence[Type] = (),
        attributes: Optional[Dict[str, AttrLike]] = None,
        regions: int = 0,
        successors: Sequence[Block] = (),
        location: Location = UNKNOWN_LOC,
    ) -> Operation:
        """Create an op and insert it at the current insertion point."""
        op = Operation.create(
            name, operands, result_types, attributes, regions, successors,
            location,
        )
        return self.insert(op)

    def insert(self, op: Operation) -> Operation:
        if self.ip is None:
            raise ValueError("builder has no insertion point")
        return self.ip.insert(op)

    def clone(self, op: Operation,
              value_map: Optional[Dict[Value, Value]] = None) -> Operation:
        """Clone ``op`` (deeply) at the insertion point."""
        return self.insert(op.clone(value_map))
