"""Core IR objects: values, operations, blocks and regions.

The design mirrors MLIR's in-memory IR:

* an :class:`Operation` has operands (SSA values), results, attributes,
  nested regions and (for terminators) successor blocks;
* a :class:`Block` has block arguments and a sequence of operations;
* a :class:`Region` has a list of blocks and belongs to an operation;
* every :class:`Value` (an :class:`OpResult` or a :class:`BlockArgument`)
  tracks its uses, enabling ``replace_all_uses_with`` and def-use
  traversal.

Operations are *registered*: dialects associate op names with subclasses
of :class:`Operation` carrying verifiers, traits and convenience
accessors. Unregistered names instantiate the generic base class, exactly
like MLIR's unregistered operations.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Type as PyType,
)

from .attributes import Attribute, AttrLike, attr as make_attr
from .diagnostics import Diagnostic, Severity
from .location import Location, UNKNOWN_LOC
from .types import Type

# ---------------------------------------------------------------------------
# Structural-digest bookkeeping (see :mod:`repro.ir.hashing`)
# ---------------------------------------------------------------------------


class DigestStats:
    """Process-wide structural-hash counters.

    ``hits``/``recomputes`` are bumped by :func:`repro.ir.hashing.
    op_digest` (memo hit vs bottom-up recompute); ``invalidations``
    counts mutation events that cleared at least one memoized digest.
    The profiler reports deltas against a per-instance baseline.
    """

    __slots__ = ("hits", "recomputes", "invalidations")

    def __init__(self) -> None:
        self.hits = 0
        self.recomputes = 0
        self.invalidations = 0

    def snapshot(self):
        return (self.hits, self.recomputes, self.invalidations)


DIGEST_STATS = DigestStats()


def invalidate_digest(op: Optional["Operation"]) -> None:
    """Clear the memoized structural digest of ``op`` and its ancestors.

    Digests are memoized bottom-up: a memoized ancestor implies every
    op beneath it is memoized too (computing the ancestor memoizes the
    whole subtree, and any later mutation below clears the full
    ancestor chain). The contrapositive lets the walk stop at the
    first op whose memo is already empty — mutations of never-hashed
    IR cost a single attribute check.
    """
    cleared = False
    node = op
    while node is not None and node._digest is not None:
        node._digest = None
        node._digest_free = ()
        node._digest_free_blocks = ()
        cleared = True
        node = node.parent_op
    if cleared:
        DIGEST_STATS.invalidations += 1


# ---------------------------------------------------------------------------
# Values and use-def chains
# ---------------------------------------------------------------------------


class OpOperand:
    """A single use of a value by an operation (use-def chain link)."""

    __slots__ = ("owner", "index", "_value")

    def __init__(self, owner: "Operation", index: int, value: "Value"):
        self.owner = owner
        self.index = index
        self._value = value
        value._uses.append(self)

    @property
    def value(self) -> "Value":
        return self._value

    def set(self, new_value: "Value") -> None:
        """Repoint this operand at ``new_value``, updating use lists."""
        self._value._uses.remove(self)
        self._value = new_value
        new_value._uses.append(self)
        if self.owner._digest is not None:
            invalidate_digest(self.owner)

    def drop(self) -> None:
        """Remove this use from its value's use list."""
        self._value._uses.remove(self)
        if self.owner._digest is not None:
            invalidate_digest(self.owner)


class Value:
    """Base class for SSA values."""

    __slots__ = ("type", "_uses")

    def __init__(self, type: Type):
        self.type = type
        self._uses: List[OpOperand] = []

    @property
    def uses(self) -> List[OpOperand]:
        """A snapshot of the current uses of this value."""
        return list(self._uses)

    @property
    def users(self) -> List["Operation"]:
        """Operations using this value (duplicates removed, order kept)."""
        seen: Dict[int, None] = {}
        out = []
        for use in self._uses:
            if id(use.owner) not in seen:
                seen[id(use.owner)] = None
                out.append(use.owner)
        return out

    def has_uses(self) -> bool:
        return bool(self._uses)

    def has_one_use(self) -> bool:
        return len(self._uses) == 1

    def replace_all_uses_with(self, other: "Value") -> None:
        """Redirect every use of this value to ``other``."""
        if other is self:
            return
        for use in list(self._uses):
            use.set(other)

    def replace_uses_where(
        self, other: "Value", predicate: Callable[[OpOperand], bool]
    ) -> None:
        """Redirect uses matching ``predicate`` to ``other``."""
        for use in list(self._uses):
            if predicate(use):
                use.set(other)

    @property
    def owner(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def defining_op(self) -> Optional["Operation"]:
        """The operation defining this value, or None for block arguments."""
        return None


class OpResult(Value):
    """A result value produced by an operation."""

    __slots__ = ("op", "index")

    def __init__(self, op: "Operation", index: int, type: Type):
        super().__init__(type)
        self.op = op
        self.index = index

    @property
    def owner(self) -> "Operation":
        return self.op

    def defining_op(self) -> Optional["Operation"]:
        return self.op

    def __repr__(self) -> str:
        return f"<OpResult #{self.index} of {self.op.name}>"


class BlockArgument(Value):
    """An argument of a block (e.g. a loop induction variable)."""

    __slots__ = ("block", "index")

    def __init__(self, block: "Block", index: int, type: Type):
        super().__init__(type)
        self.block = block
        self.index = index

    @property
    def owner(self) -> "Block":
        return self.block

    def __repr__(self) -> str:
        return f"<BlockArgument #{self.index}>"


# ---------------------------------------------------------------------------
# Operation registry
# ---------------------------------------------------------------------------

#: Global registry mapping fully qualified op names to registered classes.
OP_REGISTRY: Dict[str, PyType["Operation"]] = {}


def register_op(cls: PyType["Operation"]) -> PyType["Operation"]:
    """Class decorator registering an operation class by its ``NAME``."""
    name = getattr(cls, "NAME", None)
    if not name:
        raise ValueError(f"{cls.__name__} lacks a NAME class attribute")
    OP_REGISTRY[name] = cls
    return cls


def registered_op_class(name: str) -> Optional[PyType["Operation"]]:
    """Look up the registered class for ``name`` (None if unregistered)."""
    return OP_REGISTRY.get(name)


# ---------------------------------------------------------------------------
# Traits (structural invariants checked by the verifier)
# ---------------------------------------------------------------------------


class Trait:
    """Marker base for operation traits."""


class IsTerminator(Trait):
    """The operation must be the last one in its block."""


class NoTerminator(Trait):
    """Blocks of this op's regions need no terminator."""


class SingleBlock(Trait):
    """Each region of the operation holds at most one block."""


class IsolatedFromAbove(Trait):
    """Regions may not reference values defined outside the operation."""


class SymbolTableTrait(Trait):
    """The operation's region defines a symbol table (e.g. a module)."""


class SymbolTrait(Trait):
    """The operation defines a symbol (has a ``sym_name`` attribute)."""


class Pure(Trait):
    """The operation has no side effects (eligible for CSE/DCE/hoisting)."""


class Commutative(Trait):
    """Binary operation whose operands may be swapped."""


# ---------------------------------------------------------------------------
# Operation
# ---------------------------------------------------------------------------

OperandLike = Value
AttrsLike = Optional[Dict[str, AttrLike]]


class Operation:
    """A generic IR operation.

    Instances are created through :meth:`Operation.create`, which
    dispatches to the registered subclass when one exists for the name.
    """

    #: Fully qualified name; overridden by registered subclasses.
    NAME: str = ""
    #: Structural traits checked by the verifier.
    TRAITS: frozenset = frozenset()

    #: Memoized structural digest (see :mod:`repro.ir.hashing`). Class
    #: attributes double as the "not computed" default so creating an
    #: operation costs nothing; memoization writes instance attributes.
    _digest: Optional[bytes] = None
    #: Values referenced by this subtree but defined outside it, in
    #: first-occurrence (printer) order; part of the digest memo.
    _digest_free: tuple = ()
    #: Successor blocks referenced but not owned by this subtree.
    _digest_free_blocks: tuple = ()

    def __init__(
        self,
        name: str,
        operands: Sequence[Value] = (),
        result_types: Sequence[Type] = (),
        attributes: AttrsLike = None,
        regions: int = 0,
        successors: Sequence["Block"] = (),
        location: Location = UNKNOWN_LOC,
    ):
        self.name = name
        self.location = location
        self.parent: Optional[Block] = None
        self._operands: List[OpOperand] = [
            OpOperand(self, i, v) for i, v in enumerate(operands)
        ]
        self.results: List[OpResult] = [
            OpResult(self, i, t) for i, t in enumerate(result_types)
        ]
        self.attributes: Dict[str, Attribute] = {
            k: make_attr(v) for k, v in (attributes or {}).items()
        }
        self.regions: List[Region] = [Region(self) for _ in range(regions)]
        self.successors: List[Block] = list(successors)

    # -- creation ----------------------------------------------------------

    @staticmethod
    def create(
        name: str,
        operands: Sequence[Value] = (),
        result_types: Sequence[Type] = (),
        attributes: AttrsLike = None,
        regions: int = 0,
        successors: Sequence["Block"] = (),
        location: Location = UNKNOWN_LOC,
    ) -> "Operation":
        """Create an operation, using the registered class if present."""
        cls = OP_REGISTRY.get(name, Operation)
        op = object.__new__(cls)
        Operation.__init__(
            op, name, operands, result_types, attributes, regions, successors,
            location,
        )
        return op

    # -- operands ----------------------------------------------------------

    @property
    def operands(self) -> List[Value]:
        return [o.value for o in self._operands]

    @property
    def num_operands(self) -> int:
        return len(self._operands)

    def operand(self, index: int) -> Value:
        return self._operands[index].value

    def set_operand(self, index: int, value: Value) -> None:
        self._operands[index].set(value)

    def set_operands(self, values: Sequence[Value]) -> None:
        """Replace the whole operand list."""
        for operand in self._operands:
            operand.drop()
        self._operands = [OpOperand(self, i, v) for i, v in enumerate(values)]
        if self._digest is not None:
            invalidate_digest(self)

    def replace_uses_of_with(self, old: Value, new: Value) -> None:
        for operand in self._operands:
            if operand.value is old:
                operand.set(new)

    # -- results / attributes ------------------------------------------------

    @property
    def result(self) -> OpResult:
        """The single result (raises if the op does not have exactly one)."""
        if len(self.results) != 1:
            raise ValueError(f"{self.name} has {len(self.results)} results")
        return self.results[0]

    def attr(self, name: str, default=None) -> Optional[Attribute]:
        return self.attributes.get(name, default)

    def set_attr(self, name: str, value: AttrLike) -> None:
        self.attributes[name] = make_attr(value)
        if self._digest is not None:
            invalidate_digest(self)

    def remove_attr(self, name: str) -> Optional[Attribute]:
        removed = self.attributes.pop(name, None)
        if removed is not None and self._digest is not None:
            invalidate_digest(self)
        return removed

    def invalidate_digest(self) -> None:
        """Drop memoized structural digests after an out-of-band
        mutation (direct ``attributes``/``successors``/``name`` edits
        that bypass the hooked mutators)."""
        invalidate_digest(self)

    def has_trait(self, trait: PyType[Trait]) -> bool:
        return trait in type(self).TRAITS

    # -- structure ---------------------------------------------------------

    @property
    def parent_op(self) -> Optional["Operation"]:
        if self.parent is None or self.parent.parent is None:
            return None
        return self.parent.parent.parent

    @property
    def parent_region(self) -> Optional["Region"]:
        return self.parent.parent if self.parent is not None else None

    def ancestors(self) -> Iterator["Operation"]:
        op = self.parent_op
        while op is not None:
            yield op
            op = op.parent_op

    def is_ancestor_of(self, other: "Operation") -> bool:
        """True if ``other`` is nested within this op (or is this op)."""
        node: Optional[Operation] = other
        while node is not None:
            if node is self:
                return True
            node = node.parent_op
        return False

    def is_before_in_block(self, other: "Operation") -> bool:
        if self.parent is None or self.parent is not other.parent:
            raise ValueError("operations are not in the same block")
        ops = self.parent.ops
        return ops.index(self) < ops.index(other)

    def region(self, index: int = 0) -> "Region":
        return self.regions[index]

    def body_block(self) -> "Block":
        """First block of the first region (common single-block case)."""
        return self.regions[0].blocks[0]

    # -- mutation ----------------------------------------------------------

    def drop_all_references(self) -> None:
        """Drop all operand uses of this op and ops nested within it."""
        for operand in self._operands:
            operand.drop()
        self._operands = []
        for region in self.regions:
            for block in region.blocks:
                for op in block.ops:
                    op.drop_all_references()

    def erase(self) -> None:
        """Remove this op from its block and sever all def-use links.

        The op must have no remaining uses of its results.
        """
        for result in self.results:
            if result.has_uses():
                raise ValueError(
                    f"erasing {self.name} whose result still has uses"
                )
        self.drop_all_references()
        if self.parent is not None:
            self.parent.remove(self)

    def replace_all_uses_with(self, new_values: Sequence[Value]) -> None:
        if len(new_values) != len(self.results):
            raise ValueError("replacement value count mismatch")
        for result, new in zip(self.results, new_values):
            result.replace_all_uses_with(new)

    def move_before(self, other: "Operation") -> None:
        if self.parent is not None:
            self.parent.remove(self)
        block = other.parent
        assert block is not None
        block.insert_before(other, self)

    def move_after(self, other: "Operation") -> None:
        if self.parent is not None:
            self.parent.remove(self)
        block = other.parent
        assert block is not None
        block.insert_after(other, self)

    def clone(self, value_map: Optional[Dict[Value, Value]] = None) -> "Operation":
        """Deep-copy this operation (and nested regions).

        ``value_map`` maps old values to new ones; operands found in the
        map are remapped, others are reused as-is. The map is extended
        with this op's results and all nested block arguments/results.
        """
        if value_map is None:
            value_map = {}
        new_op = Operation.create(
            self.name,
            operands=[value_map.get(v, v) for v in self.operands],
            result_types=[r.type for r in self.results],
            attributes=dict(self.attributes),
            regions=len(self.regions),
            successors=list(self.successors),
            location=self.location,
        )
        for old_res, new_res in zip(self.results, new_op.results):
            value_map[old_res] = new_res
        for old_region, new_region in zip(self.regions, new_op.regions):
            old_region.clone_into(new_region, value_map)
        return new_op

    # -- traversal ----------------------------------------------------------

    def walk(self, reverse: bool = False) -> Iterator["Operation"]:
        """Pre-order traversal of this op and everything nested in it."""
        yield self
        regions = reversed(self.regions) if reverse else self.regions
        for region in regions:
            blocks = reversed(region.blocks) if reverse else region.blocks
            for block in blocks:
                ops = reversed(block.ops) if reverse else list(block.ops)
                for op in ops:
                    yield from op.walk(reverse)

    def walk_ops(self, name: str) -> Iterator["Operation"]:
        """Walk, yielding only ops with the given name."""
        for op in self.walk():
            if op.name == name:
                yield op

    # -- verification --------------------------------------------------------

    def verify(self) -> None:
        """Verify this op and all nested ops; raises ValueError on failure."""
        self._verify_traits()
        self.verify_op()
        for region in self.regions:
            for block in region.blocks:
                for i, op in enumerate(block.ops):
                    if op.parent is not block:
                        raise ValueError(
                            f"{op.name}: inconsistent parent pointer"
                        )
                    op.verify()

    def verify_op(self) -> None:
        """Op-specific verification; overridden by registered classes."""

    def _verify_traits(self) -> None:
        traits = type(self).TRAITS
        if IsTerminator in traits and self.parent is not None:
            if self.parent.ops and self.parent.ops[-1] is not self:
                raise ValueError(f"terminator {self.name} not last in block")
        if SingleBlock in traits:
            for region in self.regions:
                if len(region.blocks) > 1:
                    raise ValueError(f"{self.name}: region has multiple blocks")
        if SymbolTrait in traits and "sym_name" not in self.attributes:
            raise ValueError(f"{self.name}: symbol op lacks sym_name")

    def emit_error(self, message: str) -> Diagnostic:
        return Diagnostic(Severity.ERROR, f"'{self.name}': {message}",
                          self.location)

    # -- display -------------------------------------------------------------

    def __str__(self) -> str:
        from .printer import print_op

        return print_op(self)

    def __repr__(self) -> str:
        return f"<Operation {self.name}>"


# ---------------------------------------------------------------------------
# Block and Region
# ---------------------------------------------------------------------------


class Block:
    """A sequence of operations with block arguments."""

    def __init__(self, arg_types: Sequence[Type] = ()):
        self.args: List[BlockArgument] = [
            BlockArgument(self, i, t) for i, t in enumerate(arg_types)
        ]
        self.ops: List[Operation] = []
        self.parent: Optional[Region] = None

    # -- arguments -----------------------------------------------------------

    def add_arg(self, type: Type) -> BlockArgument:
        arg = BlockArgument(self, len(self.args), type)
        self.args.append(arg)
        invalidate_digest(self.parent_op)
        return arg

    def erase_arg(self, index: int) -> None:
        arg = self.args[index]
        if arg.has_uses():
            raise ValueError("erasing block argument that still has uses")
        del self.args[index]
        for i, remaining in enumerate(self.args):
            remaining.index = i
        invalidate_digest(self.parent_op)

    # -- op list -------------------------------------------------------------

    def append(self, op: Operation) -> Operation:
        if op.parent is not None:
            op.parent.remove(op)
        op.parent = self
        self.ops.append(op)
        invalidate_digest(self.parent_op)
        return op

    def insert(self, index: int, op: Operation) -> Operation:
        if op.parent is not None:
            op.parent.remove(op)
        op.parent = self
        self.ops.insert(index, op)
        invalidate_digest(self.parent_op)
        return op

    def insert_before(self, anchor: Operation, op: Operation) -> Operation:
        return self.insert(self.ops.index(anchor), op)

    def insert_after(self, anchor: Operation, op: Operation) -> Operation:
        return self.insert(self.ops.index(anchor) + 1, op)

    def remove(self, op: Operation) -> None:
        self.ops.remove(op)
        op.parent = None
        invalidate_digest(self.parent_op)

    @property
    def terminator(self) -> Optional[Operation]:
        if self.ops and self.ops[-1].has_trait(IsTerminator):
            return self.ops[-1]
        return None

    @property
    def parent_op(self) -> Optional[Operation]:
        return self.parent.parent if self.parent is not None else None

    def __iter__(self) -> Iterator[Operation]:
        return iter(list(self.ops))

    def __len__(self) -> int:
        return len(self.ops)

    def __repr__(self) -> str:
        return f"<Block with {len(self.ops)} ops>"


class Region:
    """A list of blocks owned by an operation."""

    def __init__(self, parent: Optional[Operation] = None):
        self.blocks: List[Block] = []
        self.parent = parent

    def add_block(self, block: Optional[Block] = None) -> Block:
        if block is None:
            block = Block()
        block.parent = self
        self.blocks.append(block)
        invalidate_digest(self.parent)
        return block

    def insert_block(self, index: int, block: Block) -> Block:
        block.parent = self
        self.blocks.insert(index, block)
        invalidate_digest(self.parent)
        return block

    def remove_block(self, block: Block) -> None:
        self.blocks.remove(block)
        block.parent = None
        invalidate_digest(self.parent)

    @property
    def entry_block(self) -> Block:
        if not self.blocks:
            raise ValueError("region has no blocks")
        return self.blocks[0]

    @property
    def is_empty(self) -> bool:
        return not self.blocks or all(not b.ops for b in self.blocks)

    def clone_into(self, dest: "Region",
                   value_map: Dict[Value, Value]) -> None:
        """Clone all blocks of this region into ``dest`` (assumed empty)."""
        # First create all blocks and their arguments so branch successors
        # and forward references can be remapped.
        block_map: Dict[Block, Block] = {}
        for block in self.blocks:
            new_block = Block([a.type for a in block.args])
            for old_arg, new_arg in zip(block.args, new_block.args):
                value_map[old_arg] = new_arg
            dest.add_block(new_block)
            block_map[block] = new_block
        for block in self.blocks:
            new_block = block_map[block]
            for op in block.ops:
                new_op = op.clone(value_map)
                new_op.successors = [
                    block_map.get(s, s) for s in new_op.successors
                ]
                new_block.append(new_op)

    def walk(self) -> Iterator[Operation]:
        for block in self.blocks:
            for op in list(block.ops):
                yield from op.walk()

    def __iter__(self) -> Iterator[Block]:
        return iter(self.blocks)

    def __repr__(self) -> str:
        return f"<Region with {len(self.blocks)} blocks>"
