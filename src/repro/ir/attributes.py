"""Attributes: immutable compile-time metadata attached to operations.

Attributes mirror MLIR's builtin attribute hierarchy. They are hashable
value objects so they can key dictionaries (e.g. constant pools) and be
shared between cloned operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Tuple, Union

from .types import FloatType, IndexType, IntegerType, Type


@dataclass(frozen=True)
class Attribute:
    """Base class of all attributes."""

    def __str__(self) -> str:  # pragma: no cover - overridden
        return "<attr>"


@dataclass(frozen=True)
class UnitAttr(Attribute):
    """A presence-only attribute (MLIR's ``unit``)."""

    def __str__(self) -> str:
        return "unit"


@dataclass(frozen=True)
class BoolAttr(Attribute):
    value: bool

    def __str__(self) -> str:
        return "true" if self.value else "false"


@dataclass(frozen=True)
class IntegerAttr(Attribute):
    """An integer attribute with an associated type (``42 : i32``)."""

    value: int
    type: Type = field(default_factory=lambda: IntegerType(64))

    def __str__(self) -> str:
        return f"{self.value} : {self.type}"


@dataclass(frozen=True)
class FloatAttr(Attribute):
    value: float
    type: Type = field(default_factory=lambda: FloatType(64))

    def __str__(self) -> str:
        return f"{self.value} : {self.type}"


@dataclass(frozen=True)
class StringAttr(Attribute):
    value: str

    def __str__(self) -> str:
        return f'"{self.value}"'


@dataclass(frozen=True)
class TypeAttr(Attribute):
    value: Type

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class SymbolRefAttr(Attribute):
    """A reference to a symbol by name (``@foo``)."""

    name: str
    nested: Tuple[str, ...] = field(default_factory=tuple)

    def __str__(self) -> str:
        parts = [f"@{self.name}"] + [f"::@{n}" for n in self.nested]
        return "".join(parts)


@dataclass(frozen=True)
class ArrayAttr(Attribute):
    values: Tuple[Attribute, ...]

    def __str__(self) -> str:
        return "[" + ", ".join(str(v) for v in self.values) + "]"

    def __iter__(self):
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, index: int) -> Attribute:
        return self.values[index]


@dataclass(frozen=True)
class DictAttr(Attribute):
    entries: Tuple[Tuple[str, Attribute], ...]

    @staticmethod
    def from_mapping(mapping: Mapping[str, Attribute]) -> "DictAttr":
        return DictAttr(tuple(sorted(mapping.items())))

    def as_dict(self) -> dict:
        return dict(self.entries)

    def __str__(self) -> str:
        inner = ", ".join(f"{k} = {v}" for k, v in self.entries)
        return "{" + inner + "}"


@dataclass(frozen=True)
class DenseIntAttr(Attribute):
    """A flat dense integer array (simplified ``dense<...>`` elements attr)."""

    values: Tuple[int, ...]
    type: Type = field(default_factory=lambda: IntegerType(64))

    def __str__(self) -> str:
        return f"dense<[{', '.join(str(v) for v in self.values)}]> : {self.type}"

    def __iter__(self):
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)


@dataclass(frozen=True)
class DenseFloatAttr(Attribute):
    """A flat dense float array."""

    values: Tuple[float, ...]
    type: Type = field(default_factory=lambda: IntegerType(64))

    def __str__(self) -> str:
        return f"dense<[{', '.join(str(v) for v in self.values)}]> : {self.type}"


@dataclass(frozen=True)
class AffineMapAttr(Attribute):
    """Wraps an affine map (see :mod:`repro.ir.affine`)."""

    map: "object"  # AffineMap; untyped to avoid a circular import

    def __str__(self) -> str:
        return f"affine_map<{self.map}>"


# Convenience constructors ----------------------------------------------------

AttrLike = Union[Attribute, int, float, bool, str, Type, list, tuple, dict]


def attr(value: AttrLike) -> Attribute:
    """Coerce a plain Python value into an :class:`Attribute`.

    ``int`` -> IntegerAttr(i64), ``bool`` -> BoolAttr, ``float`` ->
    FloatAttr, ``str`` -> StringAttr, ``Type`` -> TypeAttr, sequences ->
    ArrayAttr, mappings -> DictAttr. Attributes pass through unchanged.
    """
    if isinstance(value, Attribute):
        return value
    if isinstance(value, bool):  # must precede int check
        return BoolAttr(value)
    if isinstance(value, int):
        return IntegerAttr(value)
    if isinstance(value, float):
        from .types import F64

        return FloatAttr(value, F64)
    if isinstance(value, str):
        return StringAttr(value)
    if isinstance(value, Type):
        return TypeAttr(value)
    if isinstance(value, (list, tuple)):
        return ArrayAttr(tuple(attr(v) for v in value))
    if isinstance(value, dict):
        return DictAttr.from_mapping({k: attr(v) for k, v in value.items()})
    raise TypeError(f"cannot convert {value!r} to an attribute")


def int_attr(value: int, width: int = 64) -> IntegerAttr:
    return IntegerAttr(value, IntegerType(width))


def index_attr(value: int) -> IntegerAttr:
    return IntegerAttr(value, IndexType())


def unwrap(attribute: Attribute):
    """Extract the plain Python payload of simple attributes."""
    if isinstance(attribute, (IntegerAttr, FloatAttr, StringAttr, BoolAttr)):
        return attribute.value
    if isinstance(attribute, TypeAttr):
        return attribute.value
    if isinstance(attribute, ArrayAttr):
        return [unwrap(v) for v in attribute.values]
    if isinstance(attribute, DenseIntAttr):
        return list(attribute.values)
    if isinstance(attribute, DictAttr):
        return {k: unwrap(v) for k, v in attribute.entries}
    if isinstance(attribute, SymbolRefAttr):
        return attribute.name
    if isinstance(attribute, UnitAttr):
        return True
    raise TypeError(f"cannot unwrap {attribute!r}")
