"""The compilation context: dialect loading and symbol tables.

Operations are registered in a process-wide registry (see
``repro.ir.core``); the context tracks which *dialects* have been loaded
and offers symbol-table lookups, mirroring MLIR's ``MLIRContext`` and
``SymbolTable`` utilities.
"""

from __future__ import annotations

import importlib
from typing import Dict, List, Optional

from .attributes import StringAttr
from .core import Operation, SymbolTableTrait
from .diagnostics import DiagnosticEngine

#: Dialects shipped with the library, loadable by short name.
_BUILTIN_DIALECT_MODULES = {
    "builtin": "repro.dialects.builtin",
    "func": "repro.dialects.func",
    "arith": "repro.dialects.arith",
    "scf": "repro.dialects.scf",
    "cf": "repro.dialects.cf",
    "memref": "repro.dialects.memref",
    "affine": "repro.dialects.affine",
    "llvm": "repro.dialects.llvm",
    "index": "repro.dialects.index",
    "tensor": "repro.dialects.tensor",
    "linalg": "repro.dialects.linalg",
    "tosa": "repro.dialects.tosa",
    "vector": "repro.dialects.vector",
    "stablehlo": "repro.dialects.stablehlo",
    "transform": "repro.core.dialect",
}


class Context:
    """Holds loaded dialects and a diagnostics engine."""

    def __init__(self, load_all: bool = False):
        self.loaded_dialects: List[str] = []
        self.diagnostics = DiagnosticEngine()
        if load_all:
            self.load_all_dialects()

    def load_dialect(self, name: str) -> None:
        """Import the module registering the dialect's operations."""
        if name in self.loaded_dialects:
            return
        module = _BUILTIN_DIALECT_MODULES.get(name)
        if module is None:
            raise ValueError(f"unknown dialect: {name}")
        importlib.import_module(module)
        self.loaded_dialects.append(name)

    def load_all_dialects(self) -> None:
        for name in _BUILTIN_DIALECT_MODULES:
            self.load_dialect(name)


class SymbolTable:
    """Symbol lookup within an op carrying the SymbolTable trait."""

    def __init__(self, symbol_table_op: Operation):
        if not symbol_table_op.has_trait(SymbolTableTrait):
            raise ValueError(
                f"{symbol_table_op.name} does not define a symbol table"
            )
        self.op = symbol_table_op

    def lookup(self, name: str) -> Optional[Operation]:
        """Find the symbol op named ``name`` directly inside the table."""
        for block in self.op.regions[0].blocks:
            for op in block.ops:
                sym = op.attr("sym_name")
                if isinstance(sym, StringAttr) and sym.value == name:
                    return op
        return None

    def insert(self, op: Operation) -> None:
        """Append a symbol op, renaming on collision (``name_0``, ...)."""
        sym = op.attr("sym_name")
        if isinstance(sym, StringAttr) and self.lookup(sym.value) is not None:
            base = sym.value
            counter = 0
            while self.lookup(f"{base}_{counter}") is not None:
                counter += 1
            op.set_attr("sym_name", f"{base}_{counter}")
        self.op.regions[0].entry_block.append(op)

    def symbols(self) -> Dict[str, Operation]:
        out: Dict[str, Operation] = {}
        for block in self.op.regions[0].blocks:
            for op in block.ops:
                sym = op.attr("sym_name")
                if isinstance(sym, StringAttr):
                    out[sym.value] = op
        return out


def nearest_symbol_table(op: Operation) -> Optional[Operation]:
    """Walk up from ``op`` to the closest symbol-table-defining ancestor."""
    current = op if op.has_trait(SymbolTableTrait) else op.parent_op
    while current is not None and not current.has_trait(SymbolTableTrait):
        current = current.parent_op
    return current


def lookup_symbol(from_op: Operation, name: str) -> Optional[Operation]:
    """Resolve ``name`` against enclosing symbol tables, innermost first."""
    table_op = nearest_symbol_table(from_op)
    while table_op is not None:
        found = SymbolTable(table_op).lookup(name)
        if found is not None:
            return found
        parent = table_op.parent_op
        table_op = nearest_symbol_table(parent) if parent is not None else None
    return None
