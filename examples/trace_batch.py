#!/usr/bin/env python
"""End-to-end observability of a pooled batch (``repro.observability``).

A 4-worker batch is opaque from the outside: five processes, a cache,
retries. This example turns the instruments on and shows what each one
answers:

1. **tracing** — every job becomes a span tree (admission, queue wait,
   cache lookup, per-attempt dispatch) whose *worker-side* spans
   (parse/interpret/print, one span per transform op) are recorded in
   the worker process and reassembled here into one trace, exported as
   Chrome trace-event JSON for Perfetto / chrome://tracing;
2. **metrics** — the unified registry snapshot: counters that balance
   against the engine's terminal states, queue-depth and latency
   histograms with p50/p90/p99;
3. **the event log** — one JSONL record per job state transition,
   correlated by job id.

Run:  python examples/trace_batch.py

The same instruments hang off the CLI::

    repro-batch payloads/ --schedule schedules/ --jobs 4 \\
        --trace-out trace.json --events-out events.jsonl \\
        --json metrics.json -o out/
"""

import asyncio
import json
import textwrap

from repro.observability import (
    EventLog,
    Tracer,
    validate_chrome_trace,
    validate_events,
    validate_metrics_snapshot,
)
from repro.profiling import Profiler
from repro.service import (
    CompilationCache,
    CompileEngine,
    CompileJob,
    ServiceFrontier,
)

SCHEDULE = textwrap.dedent("""
    "transform.sequence"() ({
    ^bb0(%root: !transform.any_op):
      %loops = "transform.match_op"(%root) {names = ["scf.for"], position = "all"} : (!transform.any_op) -> !transform.any_op
      "transform.loop.unroll"(%loops) {factor = 2 : i64} : (!transform.any_op) -> ()
      "transform.yield"() : () -> ()
    }) : () -> ()
""").strip()


def payload(trip_count):
    return textwrap.dedent(f"""
        "builtin.module"() ({{
          "func.func"() ({{
            %lb = "arith.constant"() {{value = 0 : index}} : () -> index
            %ub = "arith.constant"() {{value = {trip_count} : index}} : () -> index
            %st = "arith.constant"() {{value = 1 : index}} : () -> index
            "scf.for"(%lb, %ub, %st) ({{
            ^bb0(%i: index):
              %c = "arith.constant"() {{value = 1 : i64}} : () -> i64
              "scf.yield"() : () -> ()
            }}) : (index, index, index) -> ()
            "func.return"() : () -> ()
          }}) {{sym_name = "kernel", function_type = () -> ()}} : () -> ()
        }}) : () -> ()
    """).strip()


def main():
    tracer = Tracer()
    events = EventLog("events.jsonl")
    profiler = Profiler()
    engine = CompileEngine(
        workers=4,
        cache=CompilationCache(capacity=64),
        tracer=tracer,
        events=events,
        profiler=profiler,
    )

    # 8 distinct payloads + 4 repeats: the repeats answer from the
    # cache, which the trace and the event log both make visible.
    jobs = [
        CompileJob(payload_text=payload(8 + 2 * i), script_text=SCHEDULE,
                   job_id=f"job-{i}")
        for i in range(8)
    ] + [
        CompileJob(payload_text=payload(8 + 2 * i), script_text=SCHEDULE,
                   job_id=f"repeat-{i}")
        for i in range(4)
    ]

    async def run():
        async with ServiceFrontier(engine, max_queue=4) as frontier:
            return await frontier.run(jobs)

    with engine:
        results = asyncio.run(run())
    events.close()
    assert all(r.ok for r in results)

    # -- 1. one trace, five processes ----------------------------------
    spans = tracer.spans()
    pids = {s.pid for s in spans}
    worker_spans = tracer.find("worker.compile")
    print(f"trace: {len(spans)} spans from {len(pids)} processes, "
          f"{len(worker_spans)} worker-side compiles")
    slowest = max(worker_spans, key=lambda s: s.end - s.start)
    # job identity lives on the engine-side dispatch parent span
    dispatch = next(s for s in spans if s.span_id == slowest.parent_id)
    print(f"slowest compile: "
          f"{1e3 * (slowest.end - slowest.start):.1f} ms "
          f"(job {dispatch.attributes['job_id']}, pid {slowest.pid})")

    trace = tracer.export_chrome()
    assert validate_chrome_trace(trace) == []
    tracer.write_chrome("trace.json")
    print("wrote trace.json -- open it at https://ui.perfetto.dev "
          "or chrome://tracing")

    # -- 2. the metrics snapshot ---------------------------------------
    snapshot = profiler.registry_snapshot()
    assert validate_metrics_snapshot(snapshot) == []
    counters = snapshot["counters"]
    latency = snapshot["histograms"]["service.job_seconds"]
    print(f"metrics: {counters['service.jobs']:.0f} jobs, "
          f"{counters['service.cache_hits']:.0f} cache hits, "
          f"job p50/p99 = {1e3 * latency['p50']:.1f}/"
          f"{1e3 * latency['p99']:.1f} ms")
    with open("metrics.json", "w") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
    print("wrote metrics.json")

    # -- 3. the event log ----------------------------------------------
    records = events.records()
    assert validate_events(records) == []
    one_job = events.for_job(results[0].job_id)
    print(f"events: {len(records)} records in events.jsonl; "
          f"{results[0].job_id} lifecycle: "
          + " -> ".join(r["event"] for r in one_job))
    hits = sum(1 for r in records if r["event"] == "CACHE_HIT")
    print(f"the {hits} CACHE_HIT events are the repeats "
          "(plus any single-flight winners)")


if __name__ == "__main__":
    main()
