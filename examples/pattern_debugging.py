#!/usr/bin/env python
"""Case study 3: hunting a counter-productive optimization pattern.

Over 100 StableHLO peephole patterns are applied to an LLM-like
payload through ``transform.apply_patterns``. The full set performs
*worse* than the set minus one pattern — "fold reshape/transpose into
full reduce" removes a fusion barrier and the XLA-like backend builds
an oversized, cache-inefficient fusion cluster. Because the pattern
set lives in a transform script, each binary-search iteration is a
script edit (milliseconds here, ~4 s in the paper) instead of a
10-minute C++ rebuild.

Run:  python examples/pattern_debugging.py
"""

from repro.enzyme import (
    ALL_PATTERN_NAMES,
    CULPRIT_PATTERN,
    build_llm_block_module,
    evaluate_pattern_set,
    find_counterproductive_pattern,
)


def main() -> None:
    print(f"pattern set: {len(ALL_PATTERN_NAMES)} patterns")

    none = evaluate_pattern_set(build_llm_block_module, [])
    full = evaluate_pattern_set(build_llm_block_module,
                                ALL_PATTERN_NAMES)
    good = evaluate_pattern_set(
        build_llm_block_module,
        [n for n in ALL_PATTERN_NAMES if n != CULPRIT_PATTERN],
    )
    print(f"\nmodelled runtime, no patterns:        "
          f"{none.modelled_seconds * 1e3:8.2f} ms")
    print(f"modelled runtime, all patterns:       "
          f"{full.modelled_seconds * 1e3:8.2f} ms")
    print(f"modelled runtime, all minus culprit:  "
          f"{good.modelled_seconds * 1e3:8.2f} ms")
    penalty = (full.modelled_seconds / good.modelled_seconds - 1) * 100
    print(f"-> one pattern costs {penalty:.1f}% end-to-end "
          "(paper: up to 9%)")

    print("\nbinary search over the pattern set "
          "(each iteration = one transform-script interpretation):")
    result = find_counterproductive_pattern(
        build_llm_block_module, ALL_PATTERN_NAMES
    )
    for index, iteration in enumerate(result.iterations):
        print(f"  iteration {index + 1:2d}: {len(iteration.patterns):3d}"
              f" patterns -> {iteration.modelled_seconds * 1e3:7.2f} ms"
              f" (compiled in {iteration.compile_seconds * 1e3:.0f} ms)")
    print(f"\nculprit identified: {result.culprit!r}")
    print(f"total compile time: {result.total_compile_seconds:.2f} s "
          f"(vs ~{len(result.iterations) * 10} minutes of C++ rebuilds)")


if __name__ == "__main__":
    main()
