// Fig. 8: split the uneven i-loop, tile the divisible part 32x32,
// try a libxsmm microkernel substitution (empty alternative = keep
// the loops), fully unroll the remainder.
// Apply with: python -m repro.tools payload.mlir --script fig8_schedule.mlir
"transform.sequence"() ({
^bb0(%0: !transform.any_op):
  %1 = "transform.match_op"(%0) {names = ["scf.for"], position = "first"} : (!transform.any_op) -> !transform.op<"scf.for">
  %2, %3 = "transform.loop.split"(%1) {div_by = 32 : i64} : (!transform.op<"scf.for">) -> (!transform.any_op, !transform.any_op)
  %4, %5 = "transform.loop.tile"(%2) {tile_sizes = [32 : i64, 32 : i64]} : (!transform.any_op) -> (!transform.any_op, !transform.any_op)
  "transform.alternatives"() ({
    "transform.to_library"(%5) {library = "libxsmm"} : (!transform.any_op) -> ()
    "transform.yield"() : () -> ()
  }, {
  }) : () -> ()
  "transform.loop.unroll"(%3) {full = unit} : (!transform.any_op) -> ()
  "transform.yield"() : () -> ()
}) : () -> ()
