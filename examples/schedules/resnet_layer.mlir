// The case-study-4 payload: a 196x256x256 matmul-shaped layer nest.
"builtin.module"() ({
  "func.func"() ({
  ^bb0(%0: memref<196x256xf64>, %1: memref<256x256xf64>, %2: memref<196x256xf64>):
    %3 = "arith.constant"() {value = 0 : index} : () -> index
    %4 = "arith.constant"() {value = 1 : index} : () -> index
    %5 = "arith.constant"() {value = 196 : index} : () -> index
    %6 = "arith.constant"() {value = 256 : index} : () -> index
    %7 = "arith.constant"() {value = 256 : index} : () -> index
    "scf.for"(%3, %5, %4) ({
    ^bb1(%8: index):
      "scf.for"(%3, %6, %4) ({
      ^bb2(%9: index):
        "scf.for"(%3, %7, %4) ({
        ^bb3(%10: index):
          %11 = "memref.load"(%0, %8, %10) : (memref<196x256xf64>, index, index) -> f64
          %12 = "memref.load"(%1, %10, %9) : (memref<256x256xf64>, index, index) -> f64
          %13 = "memref.load"(%2, %8, %9) : (memref<196x256xf64>, index, index) -> f64
          %14 = "arith.mulf"(%11, %12) : (f64, f64) -> f64
          %15 = "arith.addf"(%13, %14) : (f64, f64) -> f64
          "memref.store"(%15, %2, %8, %9) : (f64, memref<196x256xf64>, index, index) -> ()
          "scf.yield"() : () -> ()
        }) : (index, index, index) -> ()
        "scf.yield"() : () -> ()
      }) : (index, index, index) -> ()
      "scf.yield"() : () -> ()
    }) : (index, index, index) -> ()
    "func.return"() : () -> ()
  }) {function_type = (memref<196x256xf64>, memref<256x256xf64>, memref<196x256xf64>) -> (), sym_name = "resnet_layer"} : () -> ()
}) : () -> ()
