#!/usr/bin/env python
"""Frontend-authored payload + schedule template, swept via params.

Everything here is authored in Python — no textual IR:

1. ``@frontend.jit`` traces a loop-nest payload into `repro.ir`
   (digest-stable under print→parse, so it caches like text);
2. ``frontend.Schedule`` builds ONE schedule template whose tile/vector
   knobs are ``transform.param.constant {binding}`` ops;
3. the sweep submits the SAME (payload, schedule) pair to the compile
   service with different ``params`` — each binding combination is a
   distinct cache entry, a repeat is a cache hit;
4. a cost model ranks the transformed modules.

Run:  python examples/frontend_autotune.py
      python examples/frontend_autotune.py --trials 8
      # against a warm daemon (second run is all cache hits):
      repro-serve --socket /tmp/repro.sock &
      python examples/frontend_autotune.py --connect /tmp/repro.sock
"""

import argparse
import itertools

from repro import frontend as fe
from repro.execution.costmodel import CostModel
from repro.ir.parser import parse


@fe.jit
def payload(x: fe.F64):
    for i in range(0, 128, 1):
        for j in range(64):
            a = i * 64 + j
            b = a * a
            c = b - i


def make_template() -> fe.Schedule:
    """Tile the outer loop (tunable sizes), vectorize the innermost."""
    schedule = fe.Schedule()
    tile = schedule.param([4, 4], binding="TILES")
    vec = schedule.param(1, binding="VEC")
    schedule.match("scf.for", position="first") \
            .tile(sizes=tile, keep="inner")
    schedule.match("scf.for", position="last").vectorize(vec)
    return schedule


def sweep_local(schedule_text: str, configs, trials: int):
    from repro.service.cache import CompilationCache
    from repro.service.engine import CompileEngine, CompileJob

    cost = CostModel()
    ranked = []
    with CompileEngine(workers=0,
                       cache=CompilationCache(capacity=64)) as engine:
        for params in itertools.islice(configs, trials):
            job = CompileJob(payload_text=payload.mlir,
                             script_text=schedule_text, params=params)
            result = engine.run_job(job)
            if not result.ok or result.output is None:
                print(f"  {params}: {result.status.value}")
                continue
            seconds = cost.estimate_module(
                parse(result.output, "<swept>"))
            ranked.append((seconds, params, result.cache_hit))
            print(f"  {params}: {seconds * 1e3:.3f} ms modelled"
                  + (" (cached)" if result.cache_hit else ""))
        # Resubmit the best config: the engine answers from cache.
        ranked.sort(key=lambda item: item[0])
        if ranked:
            _, best, _ = ranked[0]
            again = engine.run_job(CompileJob(
                payload_text=payload.mlir, script_text=schedule_text,
                params=best))
            print(f"\nbest config {best} resubmitted: "
                  f"cache_hit={again.cache_hit}")
    return ranked


def sweep_connected(address: str, schedule_text: str, configs,
                    trials: int):
    from repro.service.client import ServiceClient

    cost = CostModel()
    client = ServiceClient(address)
    ranked = []
    for params in itertools.islice(configs, trials):
        result = client.submit(payload_text=payload.mlir,
                               script_text=schedule_text, params=params)
        if not result.ok or result.output is None:
            print(f"  {params}: {result.status.value}")
            continue
        seconds = cost.estimate_module(parse(result.output, "<swept>"))
        ranked.append((seconds, params, result.cache_hit))
        print(f"  {params}: {seconds * 1e3:.3f} ms modelled"
              + (" (cached)" if result.cache_hit else ""))
    ranked.sort(key=lambda item: item[0])
    return ranked


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--trials", type=int, default=6)
    parser.add_argument("--connect", default=None, metavar="ADDRESS",
                        help="sweep against a running repro-serve "
                        "daemon instead of an in-process engine")
    args = parser.parse_args()

    print("traced payload digest:", payload.digest[:16])
    template = make_template()
    schedule_text = template.mlir
    assert not template.lint().has_errors(), "template must be lint-clean"

    configs = ({"TILES": [t1, t2], "VEC": v}
               for t1 in (4, 8, 16, 32)
               for t2 in (4, 8)
               for v in (1, 8))

    print(f"\nsweeping {args.trials} configurations:")
    if args.connect:
        ranked = sweep_connected(args.connect, schedule_text, configs,
                                 args.trials)
    else:
        ranked = sweep_local(schedule_text, configs, args.trials)

    if ranked:
        best_seconds, best, _ = ranked[0]
        print(f"\nwinner: {best} at {best_seconds * 1e3:.3f} ms modelled")


if __name__ == "__main__":
    main()
