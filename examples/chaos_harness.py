#!/usr/bin/env python
"""Fault injection and resilience policies on the compile service.

The service's recovery machinery (``repro.service.resilience``) is
driven here by a deterministic fault schedule
(``repro.testing.faults.FaultPlan``) instead of waiting for real
infrastructure to die:

1. **retry with backoff** — an injected worker crash is retried and
   the job still produces the fault-free output, byte-identical;
2. **poison-job quarantine** — content that keeps killing workers
   trips a circuit breaker and reports ``POISONED`` instead of
   restarting the pool forever;
3. **disk-cache degradation** — injected ENOSPC demotes the cache to
   memory-only with a counted warning; no job ever fails over it;
4. the **chaos driver** — one seeded case of the harness CI runs 100
   of on every push.

Run:  python examples/chaos_harness.py

The full chaos fuzzer is a CLI::

    python -m repro.testing.faults --seed 0 --cases 50
    python -m repro.testing.faults --case-seed 12345   # replay one case
"""

import tempfile
import textwrap
import warnings

from repro.profiling import Profiler
from repro.service import (
    CompilationCache,
    CompileEngine,
    CompileJob,
    JobStatus,
    QuarantinePolicy,
    RetryPolicy,
)
from repro.testing.faults import FaultPlan, FaultSite, run_chaos_case

PAYLOAD = textwrap.dedent("""
    "builtin.module"() ({
      "func.func"() ({
        %lb = "arith.constant"() {value = 0 : index} : () -> index
        %ub = "arith.constant"() {value = 64 : index} : () -> index
        %st = "arith.constant"() {value = 1 : index} : () -> index
        "scf.for"(%lb, %ub, %st) ({
        ^bb0(%i: index):
          %c = "arith.constant"() {value = 1 : i64} : () -> i64
          "scf.yield"() : () -> ()
        }) : (index, index, index) -> ()
        "func.return"() : () -> ()
      }) {sym_name = "kernel", function_type = () -> ()} : () -> ()
    }) : () -> ()
""").strip()

SCHEDULE = textwrap.dedent("""
    "transform.sequence"() ({
    ^bb0(%root: !transform.any_op):
      %loops = "transform.match_op"(%root) {names = ["scf.for"], position = "all"} : (!transform.any_op) -> !transform.any_op
      "transform.loop.unroll"(%loops) {factor = 2 : i64} : (!transform.any_op) -> ()
      "transform.yield"() : () -> ()
    }) : () -> ()
""").strip()


def _job(**kwargs):
    return CompileJob(payload_text=PAYLOAD, script_text=SCHEDULE, **kwargs)


def main():
    # -- 1. crash -> retry -> byte-identical recovery -------------------
    # worker_crash at rate 1.0 but budgeted to a single fire: the first
    # pooled execution dies, the retry succeeds.
    plan = FaultPlan(seed=7, rates={FaultSite.WORKER_CRASH: 1.0},
                     max_fires=1)
    profiler = Profiler()
    with CompileEngine(workers=1, faults=plan,
                       profiler=profiler) as engine:
        survivor = engine.run_job(_job(job_id="survivor"))
        reference = engine.run_job(_job(job_id="reference"))
    assert survivor.status is JobStatus.SUCCESS
    assert survivor.output == reference.output
    print(f"crash recovery: {survivor.attempts} attempts, "
          f"{engine.stats.retries} retry, output byte-identical")

    # -- 2. a poison job trips the circuit breaker ----------------------
    # Unbudgeted crashes: every execution of this content dies. With
    # threshold=2 the second failure quarantines the content; the next
    # submission never reaches a worker.
    poison_plan = FaultPlan(seed=7,
                            rates={FaultSite.WORKER_CRASH: 1.0})
    with CompileEngine(workers=1, faults=poison_plan,
                       retry_policy=RetryPolicy.none(),
                       quarantine=QuarantinePolicy(threshold=2)) as engine:
        first = engine.run_job(_job(job_id="poison-1"))
        second = engine.run_job(_job(job_id="poison-2"))
        third = engine.run_job(_job(job_id="poison-3"))
    print(f"poison job: {first.status.value} -> {second.status.value} "
          f"-> {third.status.value} (pool untouched after the breaker)")

    # -- 3. disk-cache degradation --------------------------------------
    disk_plan = FaultPlan(seed=0,
                          rates={FaultSite.DISK_WRITE_ERROR: 1.0})
    with tempfile.TemporaryDirectory() as tmp:
        cache = CompilationCache(disk_path=tmp, max_disk_errors=2,
                                 faults=disk_plan)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with CompileEngine(workers=0, cache=cache) as engine:
                for index in range(3):
                    result = engine.run_job(
                        _job(params={"n": index}, job_id=f"disk-{index}")
                    )
                    assert result.ok
        print(f"disk faults: {cache.stats.disk_errors} write errors, "
              f"degraded={cache.degraded}, all jobs still ok "
              f"({len(caught)} warning)")

    # -- 4. one chaos case, end to end ----------------------------------
    report, case_plan = run_chaos_case(12345, workers=1,
                                       job_timeout=0.5)
    print(report.render())
    print(f"fired faults: {case_plan.injected}")

    print()
    print(profiler.render())


if __name__ == "__main__":
    main()
