#!/usr/bin/env python
"""A client session against the ``repro-serve`` compile daemon.

``repro-batch`` pays pool spawn and a cold cache on every invocation;
the daemon pays them once and amortizes them over every client that
connects afterwards. This example boots a :class:`CompileServer`
in-process on a unix socket (exactly what the ``repro-serve`` CLI
does) and then speaks to it the three ways a client can:

1. the **asyncio client** — concurrent submits multiplexed over one
   connection, with a streamed per-job event feed (the closed
   ADMITTED/DEQUEUED/STARTED/.../COMPLETED vocabulary from
   ``repro.observability.events``);
2. the **blocking client** — scripts and shells, one request at a
   time (this is what ``repro-submit`` uses);
3. the **raw protocol** — one JSON object per line; everything the
   clients do reduces to this.

It ends with the daemon's drain contract: ``drain`` finishes every
admitted job, then refuses new submits with a structured
``code="draining"`` error instead of hanging the submitter — the
same refuse-never-hang contract the frontier honours internally when
``close()`` races a ``submit()``.

Run:  python examples/serve_client.py

From a shell, against a real daemon::

    repro-serve --socket /tmp/repro.sock --jobs 4 --cache-size 512 &
    repro-submit payload.mlir --schedule unroll.mlir \\
        --connect /tmp/repro.sock --follow -o out.mlir
    repro-batch payloads/ --schedule schedules/ \\
        --connect /tmp/repro.sock -o out/
    repro-submit --connect /tmp/repro.sock --drain --stop
"""

import asyncio
import json
import textwrap

import repro.core  # noqa: F401 — registers transform ops
import repro.dialects  # noqa: F401 — registers payload ops
from repro.service import (
    AsyncServiceClient,
    CompilationCache,
    CompileEngine,
    CompileServer,
    RemoteError,
    ServiceClient,
)

PAYLOAD = textwrap.dedent("""
    "builtin.module"() ({
      "func.func"() ({
        %lb = "arith.constant"() {value = 0 : index} : () -> index
        %ub = "arith.constant"() {value = 64 : index} : () -> index
        %st = "arith.constant"() {value = 1 : index} : () -> index
        "scf.for"(%lb, %ub, %st) ({
        ^bb0(%i: index):
          %c = "arith.constant"() {value = 1 : i64} : () -> i64
          "scf.yield"() : () -> ()
        }) : (index, index, index) -> ()
        "func.return"() : () -> ()
      }) {sym_name = "kernel", function_type = () -> ()} : () -> ()
    }) : () -> ()
""").strip()

SCHEDULE = textwrap.dedent("""
    "transform.sequence"() ({
    ^bb0(%root: !transform.any_op):
      %factor = "transform.param.constant"() {binding = "factor", value = 2 : i64} : () -> !transform.param<i64>
      %loops = "transform.match_op"(%root) {names = ["scf.for"], position = "all"} : (!transform.any_op) -> !transform.any_op
      "transform.loop.unroll"(%loops, %factor) : (!transform.any_op, !transform.param<i64>) -> ()
      "transform.yield"() : () -> ()
    }) : () -> ()
""").strip()


async def asyncio_session(sock: str) -> None:
    client = await AsyncServiceClient.connect(sock)
    try:
        # A concurrent parameter sweep over one connection; the
        # daemon's priority scheduler admits, the engine coalesces
        # and caches.
        results = await asyncio.gather(*(
            client.submit(PAYLOAD, SCHEDULE,
                          params={"factor": factor},
                          job_id=f"sweep-{factor}",
                          priority="batch")
            for factor in (2, 4, 8, 16)
        ))
        for result in results:
            copies = (result.output or "").count("1 : i64")
            print(f"  {result.job_id}: {result.status.value}, "
                  f"body x{copies}")

        # A streamed interactive submit: every lifecycle transition
        # arrives as it happens, terminal COMPLETED last.
        seen = []
        await client.submit(PAYLOAD, SCHEDULE,
                            params={"factor": 4},
                            job_id="watched",
                            priority="interactive",
                            on_event=lambda f: seen.append(f["event"]))
        print(f"  watched lifecycle: {' -> '.join(seen)}")

        stats = await client.stats()
        server = stats["server"]
        engine = stats["engine"]
        print(f"  server: {server['submitted']} submitted, "
              f"{engine['cache_hits']} cache hits, "
              f"{server['connections_total']} connections so far")
    finally:
        await client.close()


def blocking_session(sock: str) -> None:
    with ServiceClient(sock) as client:
        result = client.submit(PAYLOAD, SCHEDULE,
                               params={"factor": 8},
                               job_id="blocking")
        print(f"  {result.job_id}: {result.status.value} "
              f"(cache_hit={result.cache_hit})")
        print(f"  ping: {client.ping()}")


async def raw_protocol(sock: str) -> None:
    reader, writer = await asyncio.open_unix_connection(sock)
    request = {"op": "submit", "id": "raw-1",
               "payload": PAYLOAD, "script": SCHEDULE,
               "params": {"factor": 2}}
    writer.write((json.dumps(request) + "\n").encode())
    await writer.drain()
    frame = json.loads(await reader.readline())
    print(f"  raw frame type={frame['type']} "
          f"status={frame.get('status')} ok={frame.get('ok')}")
    writer.close()
    await writer.wait_closed()


async def drain_contract(sock: str, server: CompileServer) -> None:
    client = await AsyncServiceClient.connect(sock)
    try:
        ack = await client.drain()
        print(f"  drain ack: {ack['type']} "
              f"(completed={ack['completed']})")
        try:
            await client.submit(PAYLOAD, SCHEDULE)
        except RemoteError as error:
            print(f"  submit after drain -> structured refusal: "
                  f"code={error.code}")
    finally:
        await client.close()


async def main() -> None:
    import tempfile
    import os

    engine = CompileEngine(workers=0,
                           cache=CompilationCache(capacity=64))
    with tempfile.TemporaryDirectory(prefix="repro-serve-") as tmp:
        sock = os.path.join(tmp, "repro.sock")
        try:
            async with CompileServer(engine, socket_path=sock,
                                     max_queue=16) as server:
                print(f"daemon listening on {sock}")
                print("-- asyncio client, streamed events --")
                await asyncio_session(sock)
                print("-- blocking client --")
                await asyncio.to_thread(blocking_session, sock)
                print("-- raw line-delimited JSON --")
                await raw_protocol(sock)
                print("-- drain contract --")
                await drain_contract(sock, server)
        finally:
            engine.shutdown()


if __name__ == "__main__":
    asyncio.run(main())
