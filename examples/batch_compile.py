#!/usr/bin/env python
"""Batch compilation through the compile service (``repro.service``).

A schedule library applied to a payload corpus is the paper's
autotuning loop at production scale: many (payload, schedule, params)
jobs, most of them near-duplicates. This example walks the service's
layers on such a sweep:

1. the **engine** — process-pool execution with static preflight,
   where a statically broken schedule is rejected before a worker is
   ever occupied;
2. the **content-addressed cache** — resubmitting a job answers from
   the cache without invoking the interpreter;
3. **parameter bindings** — one schedule text sweeps a tuning knob,
   each binding a distinct cache entry;
4. the **asyncio frontier** — a bounded queue that makes producers
   wait (backpressure) instead of buffering unboundedly.

Run:  python examples/batch_compile.py

The same sweep is available from a shell via the ``repro-batch`` CLI::

    repro-batch payloads/ --schedule schedules/ --jobs 4 \\
        --cache-dir .repro-cache --timing --json metrics.json -o out/
"""

import asyncio
import textwrap

from repro.profiling import Profiler
from repro.service import (
    CompilationCache,
    CompileEngine,
    CompileJob,
    ServiceFrontier,
)

PAYLOAD = textwrap.dedent("""
    "builtin.module"() ({
      "func.func"() ({
        %lb = "arith.constant"() {value = 0 : index} : () -> index
        %ub = "arith.constant"() {value = 64 : index} : () -> index
        %st = "arith.constant"() {value = 1 : index} : () -> index
        "scf.for"(%lb, %ub, %st) ({
        ^bb0(%i: index):
          %c = "arith.constant"() {value = 1 : i64} : () -> i64
          "scf.yield"() : () -> ()
        }) : (index, index, index) -> ()
        "func.return"() : () -> ()
      }) {sym_name = "kernel", function_type = () -> ()} : () -> ()
    }) : () -> ()
""").strip()

#: The unroll factor is a *bound parameter*: the schedule text stays
#: fixed while jobs sweep the knob via ``params={"factor": ...}``.
SCHEDULE = textwrap.dedent("""
    "transform.sequence"() ({
    ^bb0(%root: !transform.any_op):
      %factor = "transform.param.constant"() {binding = "factor", value = 2 : i64} : () -> !transform.param<i64>
      %loops = "transform.match_op"(%root) {names = ["scf.for"], position = "all"} : (!transform.any_op) -> !transform.any_op
      "transform.loop.unroll"(%loops, %factor) : (!transform.any_op, !transform.param<i64>) -> ()
      "transform.yield"() : () -> ()
    }) : () -> ()
""").strip()

#: Statically broken: %loops is reused after loop.unroll consumed it.
#: Preflight (the repro-lint dataflow suite) rejects it for free.
BROKEN = textwrap.dedent("""
    "transform.sequence"() ({
    ^bb0(%root: !transform.any_op):
      %loops = "transform.match_op"(%root) {names = ["scf.for"], position = "all"} : (!transform.any_op) -> !transform.any_op
      "transform.loop.unroll"(%loops) {factor = 2 : i64} : (!transform.any_op) -> ()
      "transform.annotate"(%loops) {attr_name = "late", value = 1 : i64} : (!transform.any_op) -> ()
      "transform.yield"() : () -> ()
    }) : () -> ()
""").strip()


def main():
    profiler = Profiler()
    cache = CompilationCache(capacity=64)
    engine = CompileEngine(workers=2, cache=cache, profiler=profiler)

    with engine:
        # -- 1. preflight rejection ------------------------------------
        bad = engine.run_job(
            CompileJob(payload_text=PAYLOAD, script_text=BROKEN)
        )
        print(f"broken schedule -> {bad.status.value} "
              "(never reached a worker)")

        # -- 2 + 3. a parameter sweep over one schedule text -----------
        sweep = [
            CompileJob(payload_text=PAYLOAD, script_text=SCHEDULE,
                       params={"factor": factor},
                       job_id=f"factor-{factor}")
            for factor in (2, 4, 8, 16)
        ]
        for result in engine.run_batch(sweep):
            body_copies = (result.output or "").count("1 : i64")
            print(f"{result.job_id}: {result.status.value}, "
                  f"body duplicated x{body_copies}")

        # Resubmitting the sweep answers from the cache: no worker runs.
        executed_before = engine.stats.executed
        rerun = engine.run_batch(sweep)
        assert all(r.cache_hit for r in rerun)
        assert engine.stats.executed == executed_before
        print(f"warm resubmission: {len(rerun)} jobs, all cache hits "
              f"(hit rate {cache.stats.hit_rate:.0%})")

        # -- 4. the asyncio frontier with backpressure ------------------
        async def through_the_frontier():
            # max_queue=2: at most two jobs admitted ahead of the
            # dispatchers; further submit() calls wait their turn.
            async with ServiceFrontier(engine, max_queue=2) as frontier:
                return await frontier.run([
                    CompileJob(payload_text=PAYLOAD, script_text=SCHEDULE,
                               params={"factor": factor},
                               job_id=f"async-{factor}")
                    for factor in (2, 4, 8, 16, 32)
                ])

        results = asyncio.run(through_the_frontier())
        fresh = sum(1 for r in results if not r.cache_hit)
        print(f"frontier run: {len(results)} jobs, {fresh} fresh "
              f"(only factor-32 was new)")

    print()
    print(profiler.render())


if __name__ == "__main__":
    main()
