#!/usr/bin/env python
"""Case study 2: building robust lowering pipelines with conditions.

Reproduces §4.2: a seven-pass pipeline lowers a subview+forall function
to the LLVM dialect. It works — until the subview offset becomes a
function argument, at which point ``expand-strided-metadata`` silently
introduces an ``affine.apply`` that no later pass removes, and the
pipeline dies with MLIR's infamous unrealized-cast error. The static
pre-/post-condition checker predicts the failure without running
anything; adding ``lower-affine`` (+ a second arith lowering) fixes it.

Run:  python examples/lowering_pipeline.py
"""

from repro.core import check_pipeline, payload_op_specs
from repro.dialects import arith, builtin, func, memref as md, scf
from repro.ir import Builder, F32, INDEX
from repro.ir.types import memref
from repro.passes import PassManager
from repro.rewrite.conversion import ConversionError

BROKEN_PIPELINE = [
    "convert-scf-to-cf",
    "convert-arith-to-llvm",
    "convert-cf-to-llvm",
    "convert-func-to-llvm",
    "expand-strided-metadata",
    "finalize-memref-to-llvm",
    "reconcile-unrealized-casts",
]
FIXED_PIPELINE = (
    BROKEN_PIPELINE[:5]
    + ["lower-affine", "convert-arith-to-llvm"]
    + BROKEN_PIPELINE[5:]
)


def build_payload(dynamic_offset: bool):
    """The §4.2 function: a 4x4 view written with 42 by an scf.forall."""
    module = builtin.module()
    arg_types = [memref(64, 64)] + ([INDEX] if dynamic_offset else [])
    f = func.func("view", arg_types)
    module.body.append(f)
    builder = Builder.at_end(f.body)
    offset = f.body.args[1] if dynamic_offset else 0
    view = md.subview(builder, f.body.args[0], [offset, 0], [4, 4],
                      [1, 1])
    c4 = arith.index_constant(builder, 4)
    forall = scf.forall(builder, [c4, c4])
    body = Builder.at_end(forall.body)
    md.store(body, arith.constant(body, 42.0, F32), view,
             forall.induction_vars)
    scf.yield_(body)
    func.return_(builder)
    return module


def run(pipeline, payload, label):
    print(f"\n--- running {label} ---")
    try:
        PassManager(pipeline).run(payload)
    except ConversionError as error:
        print(f"FAILED: {error}")
        return False
    final = sorted({op.name for op in payload.walk()
                    if op is not payload})
    print(f"succeeded; final ops: {final}")
    return True


def main() -> None:
    # 1. The zero-offset program compiles fine.
    assert run(BROKEN_PIPELINE, build_payload(False),
               "broken pipeline on static-offset payload")

    # 2. Add the %offset argument: the same pipeline now fails with an
    #    error that "does not point towards a solution".
    assert not run(BROKEN_PIPELINE, build_payload(True),
                   "broken pipeline on dynamic-offset payload")

    # 3. The static checker explains it *before* running anything.
    print("\n--- static pre-/post-condition check (no compilation) ---")
    specs = payload_op_specs(build_payload(True))
    report = check_pipeline(BROKEN_PIPELINE, specs, ["llvm.*"])
    for issue in report.leftovers():
        print(f"  {issue}")

    # 4. The fix the checker suggests: lower the affine ops (and the
    #    arith they expand to) after expand-strided-metadata.
    fixed_report = check_pipeline(FIXED_PIPELINE, specs, ["llvm.*"])
    print(f"\nfixed pipeline statically clean: {fixed_report.ok}")
    assert run(FIXED_PIPELINE, build_payload(True),
               "fixed pipeline on dynamic-offset payload")


if __name__ == "__main__":
    main()
