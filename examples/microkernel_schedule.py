#!/usr/bin/env python
"""Case study 4: fine-grained control + microkernel substitution.

The Fig. 8 script for a ResNet-50 layer (196x256x256 after im2col):
split the non-divisible i-loop, tile the divisible part 32x32, try to
replace the inner nest with a LIBXSMM-style microkernel call inside
``transform.alternatives`` (empty fallback = leave code unchanged),
fully unroll the remainder. The cost model shows the tiled version on
par with an OpenMP-pragma schedule and the microkernel >20x faster —
and the reference interpreter proves all versions compute the same
result.

Run:  python examples/microkernel_schedule.py
"""

import numpy as np

from repro.core import TransformInterpreter, dialect as transform
from repro.execution import (
    CostModel,
    PayloadInterpreter,
    build_resnet_layer_module,
)
from repro.ir import Builder


def schedule(with_library: bool, module=None):
    """Fig. 8: split -> tile -> (to_library | nothing) -> unroll rest."""
    if module is None:
        module = build_resnet_layer_module()
    script, builder, root = transform.sequence()
    i_loop = transform.match_op(builder, root, "scf.for",
                                position="first")
    main, rest = transform.loop_split(builder, i_loop, 32)
    outer, inner = transform.loop_tile(builder, main, [32, 32])
    if with_library:
        alternatives = transform.alternatives(builder, 2)
        attempt = Builder.at_end(
            alternatives.regions[0].entry_block
        )
        transform.to_library(attempt, inner, "libxsmm")
        transform.yield_(attempt)
    transform.loop_unroll(builder, rest, full=True)
    transform.yield_(builder)
    TransformInterpreter().apply(script, module)
    return module


def validate(with_library: bool) -> bool:
    """Apply the same schedule to a scaled-down layer (36x32x32 — the
    pure-Python reference interpreter is not built for 25M-flop runs)
    and compare against numpy."""
    from repro.execution.workloads import build_matmul_module

    module = schedule(
        with_library,
        module=build_matmul_module(36, 32, 32, "resnet_layer"),
    )
    rng = np.random.default_rng(0)
    a = rng.standard_normal((36, 32))
    b = rng.standard_normal((32, 32))
    c = np.zeros((36, 32))
    PayloadInterpreter(module).run("resnet_layer", a, b, c)
    return np.allclose(c, a @ b)


def main() -> None:
    model = CostModel()
    naive = build_resnet_layer_module()
    tiled = schedule(with_library=False)
    micro = schedule(with_library=True)

    t_naive = model.estimate_module(naive)
    t_tiled = CostModel().estimate_module(tiled)
    t_micro = CostModel().estimate_module(micro)

    print("ResNet-50 layer (196x256x256), modelled runtimes:")
    print(f"  naive loops:            {t_naive:8.4f} s")
    print(f"  split+tile (Fig. 8):    {t_tiled:8.4f} s"
          f"  ({t_naive / t_tiled:.2f}x; paper tiled: 0.49 s)")
    print(f"  + libxsmm microkernel:  {t_micro:8.4f} s"
          f"  ({t_tiled / t_micro:.1f}x over tiled; paper: 0.017 s)")

    calls = [op for op in micro.walk()
             if op.name == "func.call" and op.attr("microkernel")]
    print(f"\nmicrokernel calls inserted: "
          f"{[str(c.attr('callee')) for c in calls]}")

    print("\nvalidating semantics against numpy "
          "(same schedule on a 36x32x32 instance):")
    print(f"  tiled version correct:       {validate(False)}")
    print(f"  microkernel version correct: {validate(True)}")


if __name__ == "__main__":
    main()
