#!/usr/bin/env python
"""Case study 5: autotuning tile sizes through transform parameters.

The Fig. 9 script exposes its tile sizes as transform *parameters*;
the Fig. 10 space constrains them (tile sizes divide their dimension,
vectorization only when the innermost trip count is divisible by the
vector width); a BaCO-style Bayesian optimizer searches the space,
reproducing the Fig. 11 speedup-evolution curve.

Run:  python examples/autotune_matmul.py
"""

from repro.autotuning import (
    BayesianTuner,
    case_study_5_problem,
    tune_transform_script,
)


def render_curve(values, width=48):
    top = max(values)
    for index, value in enumerate(values):
        bar = "#" * max(1, int(value / top * width))
        print(f"  trial {index + 1:2d} | {bar} {value:.2f}x")


def main() -> None:
    problem = case_study_5_problem()
    print("tuning a batch matmul (Fig. 9 script, Fig. 10 space)")
    print(f"search space: {problem.space.size()} valid configurations")
    for parameter in problem.space.parameters:
        print(f"  {parameter.name}: {list(parameter.values)}")

    result, summary = tune_transform_script(
        problem, BayesianTuner(seed=1, n_initial=5), n_trials=25
    )

    print("\nFig. 11 — best-so-far speedup vs the first sampled config:")
    render_curve(summary["speedup_evolution"])
    print(f"\nfinal speedup: {summary['final_speedup']:.2f}x "
          "(paper: 1.68x)")
    print(f"best configuration: {summary['best_config']}")
    print(f"speedup over untransformed code: "
          f"{summary['speedup_over_naive']:.2f}x")


if __name__ == "__main__":
    main()
