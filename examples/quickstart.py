#!/usr/bin/env python
"""Quickstart: the paper's Fig. 1 worked example, end to end.

Builds the payload program (a function with an uneven nested loop),
writes the ``@split_then_tile_and_unroll`` transform script using the
public builder API, interprets it, and shows that the deliberate
line-11 error (unrolling an already-consumed handle) is caught both
statically and dynamically.

Run:  python examples/quickstart.py
"""

from repro.core import (
    TransformInterpreter,
    TransformInterpreterError,
    analyze_invalidation,
    dialect as transform,
)
from repro.execution.workloads import build_uneven_loop_module


def build_script(with_line_11_error: bool):
    """Fig. 1a, transcribed with the builder API."""
    script, builder, func_handle = transform.sequence()

    # %outer = match.op "scf.for" {first} in %func
    outer = transform.match_op(builder, func_handle, "scf.for",
                               position="first")
    # %hoisted = loop.hoist from %outer to %func
    function = transform.match_op(builder, func_handle, "func.func",
                                  position="last")
    transform.loop_hoist(builder, outer, function)
    # %inner = match.op "scf.for" {first} in %outer
    inner = transform.match_op(builder, outer, "scf.for",
                               position="first")
    # %param = param.constant 8
    param = transform.param_constant(builder, 8)
    # %part:2 = loop.split %inner ub_div_by=%param
    part_1, part_2 = transform.loop_split(builder, inner, param)
    # %tiled:2 = loop.tile %part#1 tile_sizes=[%param]
    transform.loop_tile(builder, part_1, param)
    # %unrolled = loop.unroll %part#2 {full}
    transform.loop_unroll(builder, part_2, full=True)
    if with_line_11_error:
        # line 11: %unrolled2 = loop.unroll %part#2 {full}
        transform.loop_unroll(builder, part_2, full=True)
    transform.yield_(builder)
    return script


def main() -> None:
    payload = build_uneven_loop_module()
    print("=== initial payload IR (Fig. 1b) ===")
    print(payload)

    script = build_script(with_line_11_error=False)
    print("\n=== transform script (Fig. 1a) ===")
    print(script)

    result = TransformInterpreter().apply(script, payload)
    print(f"\ninterpretation: {result}")
    payload.verify()
    print("\n=== transformed payload IR (Fig. 1c) ===")
    print(payload)

    # --- the deliberate error of line 11 ---------------------------------
    broken = build_script(with_line_11_error=True)
    print("\n=== line 11: static detection (§3.4) ===")
    for issue in analyze_invalidation(broken):
        print(f"static error: {issue}")

    print("\n=== line 11: dynamic detection (§3.1) ===")
    try:
        TransformInterpreter().apply(broken, build_uneven_loop_module())
    except TransformInterpreterError as error:
        print(f"dynamic error: {error}")


if __name__ == "__main__":
    main()
